"""Wrap-ring closure analysis (the paper's Theorem-2 torus remark).

Class-level theorem checks cannot see *ring closure*: a k-ary n-cube ring
deadlocks even under a single channel class, because the wrap link closes
the dependency chain geometrically.  The paper's remedy — each wrap-around
channel contributes two unidirectional channels plus two U-turns — is
Dally's dateline in EbDa notation.

:func:`unbroken_wrap_rings` walks every unidirectional link ring of a
topology and checks whether the design's class assignment lets a packet
chase its own tail end-around: a cycle in the tiny (position, class)
graph means the ring is *unbroken*.  This is pure link-structure analysis
— O(ring length x classes^2) per ring, no concrete CDG, no simulation —
shared by the static analyzer (rule EBDA005) and the differential
fuzzer's theorem oracle.
"""

from __future__ import annotations

import networkx as nx

from repro.core.channel import Channel
from repro.core.turns import TurnSet
from repro.topology.base import Coord, Link, Topology
from repro.topology.classes import ClassRule

__all__ = ["link_rings", "unbroken_rings", "unbroken_wrap_rings"]


def unbroken_rings(
    topology: Topology,
    classes: tuple[Channel, ...],
    turnset: TurnSet,
    rule: ClassRule,
) -> list[list[Link]]:
    """Concrete rings a packet class-walk can traverse end-around.

    For each unidirectional ring of links (a closed walk all in one
    (dim, sign)), build the tiny graph of (position, channel) states
    connected by straight-through or allowed same-ring transitions; a
    cycle there means the ring is *unbroken* — some class assignment lets
    a packet chase its own tail around the wrap, which the theorem oracle
    must report as unsafe (dateline's one-way class switch is exactly what
    breaks it).  Meshes have no link rings, so this is vacuous there.
    """
    out: list[list[Link]] = []
    for ring in link_rings(topology):
        graph: nx.DiGraph = nx.DiGraph()
        k = len(ring)
        for i, link in enumerate(ring):
            nxt = ring[(i + 1) % k]
            here = instantiable_classes(classes, link, rule)
            there = instantiable_classes(classes, nxt, rule)
            for a in here:
                for b in there:
                    if a == b or turnset.allows(a, b):
                        graph.add_edge((i, a), ((i + 1) % k, b))
        try:
            nx.find_cycle(graph)
        except nx.NetworkXNoCycle:
            continue
        out.append(ring)
    return out


def unbroken_wrap_rings(
    topology: Topology,
    classes: tuple[Channel, ...],
    turnset: TurnSet,
    rule: ClassRule,
) -> list[str]:
    """String form of :func:`unbroken_rings`, one line per unbroken ring
    (the shape the fuzzer's theorem oracle reports as violations)."""
    out: list[str] = []
    for ring in unbroken_rings(topology, classes, turnset, rule):
        first = ring[0]
        out.append(
            f"ring dim={first.dim} sign={first.sign:+d} through"
            f" {first.src} is unbroken (closed class walk exists)"
        )
    return out


def instantiable_classes(
    classes: tuple[Channel, ...], link: Link, rule: ClassRule
) -> list[Channel]:
    """The design channels the class rule instantiates on one link."""
    tag = rule(link)
    return [
        c
        for c in classes
        if c.dim == link.dim and c.sign == link.sign and c.cls == tag
    ]


def link_rings(topology: Topology) -> list[list[Link]]:
    """Every closed unidirectional link walk, one per (dim, sign, ring)."""
    by_dir: dict[tuple[int, int], dict[Coord, Link]] = {}
    for link in topology.links:
        by_dir.setdefault((link.dim, link.sign), {})[link.src] = link
    rings: list[list[Link]] = []
    for _direction, nxt in sorted(by_dir.items()):
        visited: set[Coord] = set()
        for start in sorted(nxt):
            if start in visited:
                continue
            walk: list[Link] = []
            node = start
            while node in nxt and node not in visited:
                visited.add(node)
                link = nxt[node]
                walk.append(link)
                node = link.dst
            if walk and node == start:
                rings.append(walk)
    return rings
