"""Baseline files: suppress known findings, fail only on new ones.

A baseline is a small JSON document of diagnostic fingerprints (see
:meth:`~repro.analyze.diagnostics.Diagnostic.fingerprint` — rule + design +
location, independent of message wording).  ``repro lint --baseline FILE``
drops every diagnostic whose fingerprint appears in the file, which lets a
project adopt the linter incrementally: record today's findings, gate on
anything new.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.analyze.engine import AnalysisReport
from repro.errors import EbdaError

__all__ = ["apply_baseline", "load_baseline", "write_baseline"]

BASELINE_VERSION = 1


def write_baseline(reports: Sequence[AnalysisReport], path: str | Path) -> int:
    """Record every current finding's fingerprint; returns the count."""
    entries: dict[str, str] = {}
    for report in reports:
        for diag in report.diagnostics:
            entries[diag.fingerprint()] = f"{diag.rule} {diag.design or report.unit_name}"
    payload = {"version": BASELINE_VERSION, "fingerprints": entries}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return len(entries)


def load_baseline(path: str | Path) -> frozenset[str]:
    """The fingerprint set of a baseline file (validating its shape)."""
    try:
        payload = json.loads(Path(path).read_text())
    except FileNotFoundError:
        raise EbdaError(f"baseline file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise EbdaError(f"baseline file {path} is not valid JSON: {exc}") from None
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise EbdaError(
            f"baseline file {path} has unsupported shape (expected"
            f' {{"version": {BASELINE_VERSION}, "fingerprints": ...}})'
        )
    fingerprints = payload.get("fingerprints", {})
    if not isinstance(fingerprints, dict):
        raise EbdaError(f"baseline file {path}: 'fingerprints' must be an object")
    return frozenset(fingerprints)


def apply_baseline(
    reports: Iterable[AnalysisReport], fingerprints: frozenset[str]
) -> list[AnalysisReport]:
    """Reports with baselined diagnostics removed (rules_run preserved)."""
    out: list[AnalysisReport] = []
    for report in reports:
        kept = tuple(
            d for d in report.diagnostics if d.fingerprint() not in fingerprints
        )
        out.append(
            AnalysisReport(
                unit_name=report.unit_name,
                diagnostics=kept,
                rules_run=report.rules_run,
                elapsed_s=report.elapsed_s,
            )
        )
    return out
