"""The lint rule catalog: ~10 structural checks grounded in the paper.

Every rule is a generator over one :class:`~repro.analyze.unit.DesignUnit`
registered under a stable ``EBDA0xx`` ID.  None of them instantiate a
concrete channel dependency graph or run the simulator — they reason over
channel classes, the turn relation, and (for the topology-aware rules)
raw link structure:

======== ======== ==========================================================
ID       severity check
======== ======== ==========================================================
EBDA001  error    partition covers >1 complete D-pair (Theorem 1)
EBDA002  error    U-/I-turn breaks the ascending numbering (Theorem 2)
EBDA003  error    backward inter-partition turn / overlap (Theorem 3)
EBDA004  error    turn references a channel outside the design
EBDA005  error    unbroken torus wrap ring (Theorem 2 torus remark)
EBDA006  warning  dead channel class: no turn enters or leaves it
EBDA007  warning  phantom class: never instantiated under the class rule
EBDA008  error    static unroutability: a direction requirement has no
                  turn-closed path
EBDA009  error    full adaptivity claimed below the (n+1)*2^(n-1) channel
                  minimum (Section 4)
EBDA010  note     adaptive design lacks turn-level escape coverage
                  (deliverability relies on lookahead routing)
EBDA011  note     non-consecutive forward transition (opt-in; Theorem 3
                  states consecutive order, skipping is a safe corollary)
EBDA012  error    dragonfly global-channel dependency loop (the global-
                  graph analogue of the wrap-ring rule)
======== ======== ==========================================================

Rules EBDA001—EBDA005 consume the *same* structured violation streams as
the fuzzer's theorem oracle (:func:`repro.core.theorems.sequence_violations`
/ :func:`turn_violations` and :func:`repro.analyze.rings.unbroken_wrap_rings`),
so the static verdict and the theorem verdict agree by construction — the
property the four-way differential fuzz gate checks on every trial.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator
from itertools import product

import networkx as nx

from repro.analyze.diagnostics import Diagnostic, Location, Severity, register_rule
from repro.analyze.rings import unbroken_rings
from repro.analyze.unit import DesignUnit
from repro.core.channel import NEG, POS, Channel, dim_name
from repro.core.minimal import min_channels
from repro.core.regions import covers_all_regions
from repro.core.theorems import (
    VIOLATION_RULES,
    Violation,
    sequence_violations,
    turn_violations,
)
from repro.topology.dragonfly import GLOBAL_DIM, Dragonfly

__all__ = ["THEOREM_MIRROR_RULES"]

#: The rules that mirror the fuzzer's theorem oracle one-to-one: an
#: error from any of these must coincide exactly with a theorem-oracle
#: rejection (checked by the differential fuzzer on every trial).
THEOREM_MIRROR_RULES = ("EBDA001", "EBDA002", "EBDA003", "EBDA004", "EBDA005")

#: A movement direction: (dimension index, sign).
Direction = tuple[int, int]


def _dir_name(d: Direction) -> str:
    return f"{dim_name(d[0])}{'+' if d[1] == POS else '-'}"


def _dir_names(dirs: Iterable[Direction]) -> str:
    return " ".join(_dir_name(d) for d in sorted(dirs))


def _partition_location(unit: DesignUnit, violation: Violation) -> Location:
    idx = violation.partition
    name = ""
    if idx is not None and 0 <= idx < len(unit.sequence):
        name = unit.sequence[idx].name
    return Location(
        partition=idx,
        partition_name=name,
        turn=str(violation.turn) if violation.turn is not None else "",
    )


# ---------------------------------------------------------------------------
# EBDA001—EBDA004: the theorem mirrors (shared violation streams)
# ---------------------------------------------------------------------------

@register_rule(
    "EBDA001",
    "partition covers more than one complete D-pair",
    Severity.ERROR,
    "Theorem 1",
)
def ebda001(unit: DesignUnit) -> Iterator[Diagnostic]:
    """A partition is cycle-free iff it covers at most one complete D-pair."""
    for v in sequence_violations(unit.sequence):
        if VIOLATION_RULES[v.code] != "EBDA001":
            continue
        yield Diagnostic(
            "EBDA001",
            Severity.ERROR,
            v.message,
            _partition_location(unit, v),
            hint="split the partition so at most one dimension keeps both"
            " directions (Theorem 1)",
        )


@register_rule(
    "EBDA002",
    "U-/I-turn breaks the ascending numbering",
    Severity.ERROR,
    "Theorem 2",
)
def ebda002(unit: DesignUnit) -> Iterator[Diagnostic]:
    """Same-dimension turns must follow the partition's ascending numbering."""
    for v in turn_violations(unit.sequence, sorted(unit.turnset.turns)):
        if VIOLATION_RULES[v.code] != "EBDA002":
            continue
        yield Diagnostic(
            "EBDA002",
            Severity.ERROR,
            v.message,
            _partition_location(unit, v),
            hint="renumber the dimension's channels or drop the descending"
            " turn; Theorem 2 admits any single ascending order",
        )


@register_rule(
    "EBDA003",
    "partition order violated (backward transition or overlap)",
    Severity.ERROR,
    "Theorem 3",
)
def ebda003(unit: DesignUnit) -> Iterator[Diagnostic]:
    """Inter-partition transitions must ascend over disjoint partitions."""
    stream = sequence_violations(unit.sequence) + turn_violations(
        unit.sequence, sorted(unit.turnset.turns)
    )
    for v in stream:
        if VIOLATION_RULES[v.code] != "EBDA003":
            continue
        yield Diagnostic(
            "EBDA003",
            Severity.ERROR,
            v.message,
            _partition_location(unit, v),
            hint="reorder the sequence so every transition ascends, or"
            " remove the backward turn (Theorem 3)",
        )


@register_rule(
    "EBDA004",
    "turn references a channel outside the design",
    Severity.ERROR,
    "Theorem 3 / Definition 6",
)
def ebda004(unit: DesignUnit) -> Iterator[Diagnostic]:
    """Every granted turn must connect two channels some partition covers."""
    for v in turn_violations(unit.sequence, sorted(unit.turnset.turns)):
        if VIOLATION_RULES[v.code] != "EBDA004":
            continue
        yield Diagnostic(
            "EBDA004",
            Severity.ERROR,
            v.message,
            Location(turn=str(v.turn) if v.turn is not None else ""),
            hint="add the channel to a partition or drop the turn",
        )


# ---------------------------------------------------------------------------
# EBDA005: wrap-ring closure (topology-aware)
# ---------------------------------------------------------------------------

@register_rule(
    "EBDA005",
    "unbroken torus wrap ring",
    Severity.ERROR,
    "Theorem 2, torus remark",
    requires_topology=True,
)
def ebda005(unit: DesignUnit) -> Iterator[Diagnostic]:
    """Every unidirectional wrap ring needs a one-way class switch.

    A 4x4x4 torus has 16 rings per direction; findings aggregate per
    (dim, sign) so one broken direction is one diagnostic, not sixteen.
    """
    assert unit.topology is not None
    grouped: dict[Direction, list[str]] = {}
    for ring in unbroken_rings(unit.topology, unit.channels, unit.turnset, unit.rule):
        first = ring[0]
        grouped.setdefault((first.dim, first.sign), []).append(str(first.src))
    for (dim, sign), starts in sorted(grouped.items()):
        yield Diagnostic(
            "EBDA005",
            Severity.ERROR,
            f"{len(starts)} wrap ring(s) along {_dir_name((dim, sign))} are"
            f" unbroken (a closed class walk exists, e.g. through"
            f" {starts[0]}): a packet can chase its own tail end-around",
            Location(channel=_dir_name((dim, sign))),
            hint="break the ring with a dateline: split its channels into"
            " pre-/post-dateline classes with a one-way switch on the"
            " wrap link",
        )


# ---------------------------------------------------------------------------
# EBDA006/EBDA007: dead and phantom channel classes
# ---------------------------------------------------------------------------

@register_rule(
    "EBDA006",
    "dead channel class",
    Severity.WARNING,
    "Definition 2",
)
def ebda006(unit: DesignUnit) -> Iterator[Diagnostic]:
    """A channel no turn enters or leaves is isolated in the abstract graph.

    Packets may still inject onto it, but can then serve only routes that
    never leave its dimension — in a multi-channel design that is almost
    always a leftover from an edit (the fuzzer's ``drop-channel`` mutants
    produce exactly this shape).
    """
    if len(unit.channels) <= 1:
        return
    touched: set[Channel] = set()
    for t in unit.turnset.turns:
        touched.add(t.src)
        touched.add(t.dst)
    for i, part in enumerate(unit.sequence):
        for ch in part:
            if ch not in touched:
                yield Diagnostic(
                    "EBDA006",
                    Severity.WARNING,
                    f"channel {ch} participates in no turn: packets entering"
                    " it can never change dimension or class",
                    Location(partition=i, partition_name=part.name, channel=str(ch)),
                    hint="remove the channel or grant turns connecting it",
                )


@register_rule(
    "EBDA007",
    "phantom channel class",
    Severity.WARNING,
    "Definition 6",
    requires_topology=True,
)
def ebda007(unit: DesignUnit) -> Iterator[Diagnostic]:
    """A channel whose spatial class the rule never produces is never
    instantiated on any link — and every turn referencing it is dead."""
    topology = unit.topology
    assert topology is not None
    tags: dict[Direction, set[str]] = {}
    for link in topology.links:
        tags.setdefault((link.dim, link.sign), set()).add(unit.rule(link))
    for i, part in enumerate(unit.sequence):
        for ch in part:
            produced = tags.get((ch.dim, ch.sign))
            if produced is None:
                reason = (
                    f"the topology has no {_dir_name((ch.dim, ch.sign))} links"
                )
            elif ch.cls not in produced:
                reason = (
                    f"the class rule never tags a {_dir_name((ch.dim, ch.sign))}"
                    f" link with {ch.cls!r} (it produces"
                    f" {sorted(produced)!r})"
                )
            else:
                continue
            dead_turns = sum(
                1 for t in unit.turnset.turns if ch in (t.src, t.dst)
            )
            yield Diagnostic(
                "EBDA007",
                Severity.WARNING,
                f"channel {ch} is never instantiated: {reason};"
                f" {dead_turns} turn(s) referencing it can never be taken",
                Location(partition=i, partition_name=part.name, channel=str(ch)),
                hint="fix the channel's spatial class to one the rule"
                " produces, or lint with the intended class rule",
            )


# ---------------------------------------------------------------------------
# EBDA008/EBDA010: class-level routability
# ---------------------------------------------------------------------------

def _route_satisfiable(
    unit: DesignUnit, need: frozenset[Direction], start: Channel | None
) -> bool:
    """Can some turn-closed channel walk serve every direction in ``need``?

    BFS over (remaining requirements, current channel) states.  A move
    either consumes a required direction by hopping onto a channel that
    provides it (injection and straight-through are free, anything else
    needs an allowed turn), or switches between same-direction channels
    (I-turns — how dateline designs change class mid-dimension).  This is
    the class-level abstraction of minimal routing: sound for class-free
    designs, conservative-by-construction with spatial classes.
    """
    state = (need, start)
    seen: set[tuple[frozenset[Direction], Channel | None]] = {state}
    queue: deque[tuple[frozenset[Direction], Channel | None]] = deque([state])
    while queue:
        remaining, cur = queue.popleft()
        if not remaining:
            return True
        nxt: list[tuple[frozenset[Direction], Channel | None]] = []
        for d in remaining:
            for ch in unit.channels_of_direction(*d):
                if unit.step_allowed(cur, ch):
                    nxt.append((remaining - {d}, ch))
        if cur is not None:
            for ch in unit.channels_of_direction(cur.dim, cur.sign):
                if ch != cur and unit.turnset.allows(cur, ch):
                    nxt.append((remaining, ch))
        for s in nxt:
            if s not in seen:
                seen.add(s)
                queue.append(s)
    return False


def _requirement_sets(dims: tuple[int, ...]) -> Iterator[frozenset[Direction]]:
    """Every minimal-routing requirement: <=1 direction per dimension."""
    choices: list[tuple[Direction | None, ...]] = [
        ((d, POS), (d, NEG), None) for d in dims
    ]
    for combo in product(*choices):
        s = frozenset(c for c in combo if c is not None)
        if s:
            yield s


@register_rule(
    "EBDA008",
    "static unroutability",
    Severity.ERROR,
    "Section 5 (connectivity)",
)
def ebda008(unit: DesignUnit) -> Iterator[Diagnostic]:
    """Every src→dst class pair needs a turn-closed path.

    First checks every direction has a providing channel, then checks
    every per-dimension direction requirement admits some serving order.
    Only minimal failing requirements are reported (a superset of a
    failing requirement always fails too).

    With a concrete topology bound, requirements are restricted to the
    directions its links actually realise: a dragonfly has no negative
    links at all, so demanding ``X-`` coverage there would be a false
    positive, not a connectivity gap.
    """
    topo_dirs: set[Direction] | None = None
    if unit.topology is not None:
        topo_dirs = {(l.dim, l.sign) for l in unit.topology.links}
    missing = False
    for d in unit.dims:
        for sign in (POS, NEG):
            if topo_dirs is not None and (d, sign) not in topo_dirs:
                continue
            if (d, sign) not in unit.directions:
                missing = True
                yield Diagnostic(
                    "EBDA008",
                    Severity.ERROR,
                    f"no channel provides movement along"
                    f" {_dir_name((d, sign))}: any route needing it is"
                    " unservable",
                    Location(channel=_dir_name((d, sign))),
                    hint="add a channel for the direction (every dimension"
                    " of a mesh needs both signs)",
                )
    if missing:
        return
    failed: list[frozenset[Direction]] = []
    for need in sorted(_requirement_sets(unit.dims), key=lambda s: (len(s), _dir_names(s))):
        if topo_dirs is not None and not need <= topo_dirs:
            continue
        if any(f <= need for f in failed):
            continue
        if not _route_satisfiable(unit, need, None):
            failed.append(need)
            yield Diagnostic(
                "EBDA008",
                Severity.ERROR,
                f"no turn-closed path serves a route needing directions"
                f" {{{_dir_names(need)}}}: no ordering of these movements"
                " is connected by allowed turns",
                Location(),
                hint="grant turns (or reorder partitions) so some ordering"
                " of the required directions becomes turn-connected",
            )


@register_rule(
    "EBDA009",
    "full adaptivity claimed below the channel minimum",
    Severity.ERROR,
    "Section 4",
)
def ebda009(unit: DesignUnit) -> Iterator[Diagnostic]:
    """Full adaptivity in n dimensions needs (n+1)*2^(n-1) channels."""
    if not unit.claims_fully_adaptive:
        return
    n = len(unit.dims)
    if n < 1:
        return
    needed = min_channels(n)
    have = len(unit.channels)
    if have < needed:
        yield Diagnostic(
            "EBDA009",
            Severity.ERROR,
            f"design claims full adaptivity in {n}D with {have} channels;"
            f" the Section-4 minimum is (n+1)*2^(n-1) = {needed}",
            Location(),
            hint=f"add channels up to {needed} (e.g. the minimal"
            " construction of Section 4) or drop the claim",
        )
    elif not covers_all_regions(unit.sequence, n):
        yield Diagnostic(
            "EBDA009",
            Severity.WARNING,
            f"design claims full adaptivity but no single partition covers"
            f" every region of the {n}D space (Section 4's structural"
            " criterion)",
            Location(),
            hint="check the region assignment with"
            " repro.core.minimal.region_assignment",
        )


@register_rule(
    "EBDA010",
    "missing escape coverage for an adaptive design",
    Severity.NOTE,
    "Section 5.4 (routing logic)",
)
def ebda010(unit: DesignUnit) -> Iterator[Diagnostic]:
    """Adaptive designs can strand greedy routers without escape coverage.

    For an adaptive design, find (channel, pending directions) states a
    packet can legally enter but never complete: the route exists from
    injection (so EBDA008 stays quiet) yet turn legality alone cannot
    finish it once the packet is on that channel.  Deliverability then
    relies on lookahead (reachability-filtered) routing or escape-channel
    selection — worth knowing, not an error (TurnTableRouting implements
    the lookahead).
    """
    adaptive = any(
        len({ch.dim for ch in part}) > 1 for part in unit.sequence
    ) or any(
        len(unit.channels_of_direction(d, s)) > 1 for (d, s) in unit.directions
    )
    if not adaptive:
        return
    for ch in unit.channels:
        other_dims = tuple(d for d in unit.dims if d != ch.dim)
        if not other_dims:
            continue
        reported = False
        for need in sorted(
            _requirement_sets(other_dims), key=lambda s: (len(s), _dir_names(s))
        ):
            if reported:
                break
            if not all(d in unit.directions for d in need):
                continue
            full = need | {(ch.dim, ch.sign)}
            if not _route_satisfiable(unit, full, None):
                continue  # globally unroutable: EBDA008's business
            if not _route_satisfiable(unit, need, ch):
                reported = True
                yield Diagnostic(
                    "EBDA010",
                    Severity.NOTE,
                    f"a packet that enters {ch} while still needing"
                    f" {{{_dir_names(need)}}} has no turn-legal completion;"
                    " deliverability relies on lookahead routing or escape"
                    " channels",
                    Location(
                        partition=unit.sequence.partition_index(ch)
                        if unit.sequence.covers(ch)
                        else None,
                        channel=str(ch),
                    ),
                    hint="fine with reachability-filtered routing"
                    " (TurnTableRouting); a greedy router needs escape"
                    " coverage into a completing class",
                )


# ---------------------------------------------------------------------------
# EBDA011: pedantic consecutive-order check (opt-in)
# ---------------------------------------------------------------------------

@register_rule(
    "EBDA011",
    "non-consecutive forward transition",
    Severity.NOTE,
    "Theorem 3 (consecutive order)",
    default_enabled=False,
)
def ebda011(unit: DesignUnit) -> Iterator[Diagnostic]:
    """Theorem 3 states transitions happen in *consecutive* ascending order;
    skipping partitions is a safe corollary but some designers want the
    paper's literal form (extract with ``transitions="consecutive"``)."""
    seen: set[tuple[int, int]] = set()
    for t in sorted(unit.turnset.turns):
        if not (unit.sequence.covers(t.src) and unit.sequence.covers(t.dst)):
            continue
        src_idx = unit.sequence.partition_index(t.src)
        dst_idx = unit.sequence.partition_index(t.dst)
        if dst_idx > src_idx + 1 and (src_idx, dst_idx) not in seen:
            seen.add((src_idx, dst_idx))
            yield Diagnostic(
                "EBDA011",
                Severity.NOTE,
                f"turns skip from partition {src_idx} directly to partition"
                f" {dst_idx}; the paper's Theorem 3 statement uses"
                " consecutive transitions (skipping is a safe corollary)",
                Location(partition=src_idx, turn=str(t)),
                hint='extract turns with transitions="consecutive" for the'
                " literal Theorem-3 form",
            )


# ---------------------------------------------------------------------------
# EBDA012: dragonfly global-channel loops (topology-aware)
# ---------------------------------------------------------------------------

@register_rule(
    "EBDA012",
    "dragonfly global-channel dependency loop",
    Severity.ERROR,
    "Section 3.1 (dragonfly), Theorem 3 analogue",
    requires_topology=True,
)
def ebda012(unit: DesignUnit) -> Iterator[Diagnostic]:
    """The global graph's analogue of the wrap-ring rule (EBDA005).

    A dragonfly has no torus rings — its deadlock geometry lives in the
    *global* graph: every pair of groups is one global link, so any cycle
    of phase classes that passes through a global channel lets packets in
    different groups hold local buffers while waiting for each other's
    global hop, the classic dragonfly credit loop (the reason canonical
    designs order their phases ``L1 -> G -> L2``).

    The check builds the digraph of instantiable channel classes connected
    by granted turns between *distinct* classes and reports every cyclic
    component containing a global channel.  Straight-through (same-class)
    steps are excluded: on a canonical dragonfly each phase is a single
    hop — the local graph is complete and each route has one global hop —
    so a class never feeds itself.  That premise is exactly why the
    generic wrap-ring rule (which must assume arbitrary-length rings)
    stays disabled for dragonfly lints.
    """
    topology = unit.topology
    if not isinstance(topology, Dragonfly):
        return
    produced: dict[Direction, set[str]] = {}
    for link in topology.links:
        produced.setdefault((link.dim, link.sign), set()).add(unit.rule(link))
    instantiable = [
        ch
        for ch in unit.channels
        if ch.cls in produced.get((ch.dim, ch.sign), set())
    ]
    graph: nx.DiGraph = nx.DiGraph()
    graph.add_nodes_from(instantiable)
    for a in instantiable:
        for b in instantiable:
            if a != b and unit.turnset.allows(a, b):
                graph.add_edge(a, b)
    for component in nx.strongly_connected_components(graph):
        if len(component) < 2:
            continue
        loop = sorted(component)
        global_channels = [ch for ch in loop if ch.dim == GLOBAL_DIM]
        if not global_channels:
            continue
        names = " ".join(str(ch) for ch in loop)
        yield Diagnostic(
            "EBDA012",
            Severity.ERROR,
            f"channel classes {{{names}}} form a dependency loop through"
            f" global channel {global_channels[0]}: groups can hold local"
            " buffers while waiting on each other's global hop",
            Location(channel=str(global_channels[0])),
            hint="order the phase classes so no turn re-enters an earlier"
            " phase through a global channel (canonical dragonfly designs"
            " use L1 -> G -> L2)",
        )
