"""The analyzer's input: a design plus everything statically knowable.

A :class:`DesignUnit` bundles a :class:`~repro.core.sequence.PartitionSequence`
with the :class:`~repro.core.turns.TurnSet` actually granted to routers
(possibly hand-edited or mutated — judging it is the rules' job), an
optional topology + class rule for the topology-aware rules, and analysis
options such as a full-adaptivity claim.

Nothing here builds a concrete CDG or touches the simulator: the topology
is only consulted for its *link structure* (wrap rings, class-rule tags),
which is O(links) to enumerate.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import Protocol, runtime_checkable

from repro.core.channel import Channel
from repro.core.extraction import extract_turns
from repro.core.sequence import PartitionSequence
from repro.core.turns import TurnSet
from repro.errors import EbdaError
from repro.topology.base import Topology
from repro.topology.classes import ClassRule, no_classes

__all__ = ["DesignUnit", "TableProtocol"]


@runtime_checkable
class TableProtocol(Protocol):
    """Structural type for routings the analyzer can lint directly.

    Any routing exposing its design, granted turn set, topology and class
    rule — :class:`~repro.routing.table.TurnTableRouting` is the canonical
    implementation — can be handed to :meth:`DesignUnit.from_routing`.
    """

    design: PartitionSequence
    turnset: TurnSet
    topology: Topology
    rule: ClassRule


@dataclass(frozen=True)
class DesignUnit:
    """One design under static analysis."""

    sequence: PartitionSequence
    turnset: TurnSet
    name: str = ""
    #: Optional concrete topology: enables the topology-aware rules
    #: (wrap rings, phantom classes).  Never used to build a CDG.
    topology: Topology | None = None
    rule: ClassRule = no_classes
    #: Design intent: set when the designer claims full adaptivity, arming
    #: the Section-4 minimum-channel check (EBDA009).
    claims_fully_adaptive: bool = False
    #: Extra context echoed into reports (free-form).
    tags: tuple[str, ...] = field(default=())

    # -- construction ------------------------------------------------------

    @classmethod
    def from_sequence(
        cls,
        sequence: PartitionSequence | str,
        *,
        name: str = "",
        topology: Topology | None = None,
        rule: ClassRule = no_classes,
        transitions: str = "all",
        claims_fully_adaptive: bool = False,
    ) -> DesignUnit:
        """Compile a (possibly invalid) sequence into a lintable unit.

        Turn extraction deliberately skips theorem validation — surfacing
        violations as diagnostics is the analyzer's entire purpose.
        """
        if isinstance(sequence, str):
            sequence = PartitionSequence.parse(sequence)
        turnset = extract_turns(sequence, transitions=transitions, validate=False)
        return cls(
            sequence=sequence,
            turnset=turnset,
            name=name or sequence.arrow_notation(),
            topology=topology,
            rule=rule,
            claims_fully_adaptive=claims_fully_adaptive,
        )

    @classmethod
    def from_routing(cls, routing: TableProtocol, *, name: str = "") -> DesignUnit:
        """Lint a live routing through the table protocol.

        Accepts any object exposing ``design``/``turnset``/``topology``/
        ``rule`` (duck-typed, checked at runtime).
        """
        for attr in ("design", "turnset", "topology", "rule"):
            if not hasattr(routing, attr):
                raise EbdaError(
                    f"{type(routing).__name__} does not implement the table"
                    f" protocol (missing {attr!r}); lint the PartitionSequence"
                    " directly instead"
                )
        return cls(
            sequence=routing.design,
            turnset=routing.turnset,
            name=name or getattr(routing, "name", "") or type(routing).__name__,
            topology=routing.topology,
            rule=routing.rule,
        )

    def with_topology(self, topology: Topology, rule: ClassRule | None = None) -> DesignUnit:
        """A copy bound to a concrete topology (arms topology-aware rules)."""
        return replace(self, topology=topology, rule=rule if rule is not None else self.rule)

    # -- derived structure (cached: units are frozen) ----------------------

    @cached_property
    def channels(self) -> tuple[Channel, ...]:
        """Every channel class of the design, in sequence order."""
        return self.sequence.all_channels

    @cached_property
    def dims(self) -> tuple[int, ...]:
        """Sorted dimension indices the design's channels cover."""
        return tuple(sorted({ch.dim for ch in self.channels}))

    @cached_property
    def directions(self) -> frozenset[tuple[int, int]]:
        """Every (dim, sign) movement direction some channel provides."""
        return frozenset((ch.dim, ch.sign) for ch in self.channels)

    def channels_of_direction(self, dim: int, sign: int) -> tuple[Channel, ...]:
        """All channel classes providing movement along (dim, sign)."""
        return tuple(ch for ch in self.channels if ch.dim == dim and ch.sign == sign)

    def step_allowed(self, src: Channel | None, dst: Channel) -> bool:
        """May a packet hop onto ``dst`` coming from ``src``?

        Injection (``src is None``) and continuing straight are always
        legal; anything else requires an explicit turn.
        """
        return src is None or src == dst or self.turnset.allows(src, dst)
