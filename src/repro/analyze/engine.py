"""The analysis engine: rule selection, execution, reports.

An :class:`Analyzer` holds a resolved rule selection and runs the catalog
over :class:`~repro.analyze.unit.DesignUnit` instances, producing an
:class:`AnalysisReport` per unit.  Selection semantics follow familiar
linter conventions:

* no ``select`` — every default-enabled rule runs (opt-in rules such as
  EBDA011 stay off);
* explicit ``select`` — exactly those rules run, opt-in or not;
* ``ignore`` always subtracts, after selection.

Topology-dependent rules are silently skipped (and recorded as not run)
when the unit carries no topology.
"""

from __future__ import annotations

import time
from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass, field

# Importing the rules module populates the RULES registry as a side effect.
import repro.analyze.rules as _rules
from repro.analyze.diagnostics import RULES, Diagnostic, Severity
from repro.analyze.rules import THEOREM_MIRROR_RULES
from repro.analyze.unit import DesignUnit
from repro.errors import EbdaError
from repro.obs.metrics import REGISTRY
from repro.obs.trace import current_tracer

__all__ = ["AnalysisReport", "Analyzer", "lint_design", "static_errors"]

assert _rules  # imported for its registration side effect


@dataclass(frozen=True)
class AnalysisReport:
    """Everything one lint run found for one design unit."""

    unit_name: str
    diagnostics: tuple[Diagnostic, ...]
    #: Rule IDs that actually executed (topology-gated rules may be absent).
    rules_run: tuple[str, ...]
    elapsed_s: float = 0.0

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.WARNING)

    @property
    def notes(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.NOTE)

    @property
    def counts(self) -> dict[str, int]:
        """Diagnostic count per severity value (always all three keys)."""
        c = Counter(d.severity.value for d in self.diagnostics)
        return {s.value: c.get(s.value, 0) for s in Severity}

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic was produced."""
        return not self.errors

    def worst(self) -> Severity | None:
        """The most severe diagnostic level present, or None when clean."""
        return max(
            (d.severity for d in self.diagnostics),
            key=lambda s: s.rank,
            default=None,
        )

    def at_or_above(self, threshold: Severity) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity.at_least(threshold))

    def to_dict(self) -> dict[str, object]:
        return {
            "design": self.unit_name,
            "counts": self.counts,
            "rules_run": list(self.rules_run),
            "elapsed_s": round(self.elapsed_s, 6),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


@dataclass(frozen=True)
class Analyzer:
    """A configured lint pass: which rules run, in catalog order."""

    select: tuple[str, ...] | None = None
    ignore: tuple[str, ...] = ()
    _resolved: tuple[str, ...] = field(init=False, repr=False, default=())

    def __post_init__(self) -> None:
        known = set(RULES)
        for rid in (self.select or ()) + tuple(self.ignore):
            if rid not in known:
                raise EbdaError(
                    f"unknown rule id {rid!r}; known rules:"
                    f" {', '.join(sorted(known))}"
                )
        if self.select is None:
            chosen = [rid for rid, info in RULES.items() if info.default_enabled]
        else:
            chosen = [rid for rid in RULES if rid in self.select]
        resolved = tuple(rid for rid in sorted(chosen) if rid not in self.ignore)
        object.__setattr__(self, "_resolved", resolved)

    @property
    def enabled_rules(self) -> tuple[str, ...]:
        """The rule IDs this analyzer will attempt, in ID order."""
        return self._resolved

    def run(self, unit: DesignUnit) -> AnalysisReport:
        """Execute every enabled (and applicable) rule over one unit."""
        start = time.perf_counter()
        diagnostics: list[Diagnostic] = []
        ran: list[str] = []
        with current_tracer().span("lint.unit", unit=unit.name) as span:
            for rid in self._resolved:
                info = RULES[rid]
                if info.requires_topology and unit.topology is None:
                    continue
                ran.append(rid)
                for diag in info.func(unit):
                    if diag.design != unit.name:
                        diag = Diagnostic(
                            rule=diag.rule,
                            severity=diag.severity,
                            message=diag.message,
                            location=diag.location,
                            hint=diag.hint,
                            design=unit.name,
                        )
                    diagnostics.append(diag)
            span.set(rules=len(ran), diagnostics=len(diagnostics))
        REGISTRY.counter(
            "repro_lint_units_total", help="Design units linted."
        ).inc()
        REGISTRY.counter(
            "repro_lint_diagnostics_total", help="Lint diagnostics emitted."
        ).inc(len(diagnostics))
        return AnalysisReport(
            unit_name=unit.name,
            diagnostics=tuple(diagnostics),
            rules_run=tuple(ran),
            elapsed_s=time.perf_counter() - start,
        )

    def run_many(self, units: Iterable[DesignUnit]) -> list[AnalysisReport]:
        return [self.run(u) for u in units]


def lint_design(
    unit: DesignUnit,
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] = (),
) -> AnalysisReport:
    """One-shot convenience: lint a unit with an ad-hoc rule selection."""
    return Analyzer(
        select=tuple(select) if select is not None else None,
        ignore=tuple(ignore),
    ).run(unit)


def static_errors(
    unit: DesignUnit, *, rules: Iterable[str] = THEOREM_MIRROR_RULES
) -> tuple[str, ...]:
    """Error-level findings from the theorem-mirror rules, as flat strings.

    This is the static analyzer's *oracle face*: the differential fuzzer
    calls it as its fourth verdict and cross-checks it against the theorem
    oracle on every trial (the two must agree by construction — EBDA001-005
    consume the exact same violation streams).
    """
    wanted = tuple(rules)
    report = Analyzer(select=wanted).run(unit)
    return tuple(
        f"{d.rule}: {d.message}"
        for d in report.diagnostics
        if d.severity is Severity.ERROR
    )
