"""Diagnostic records, severities and the rule registry.

A :class:`Diagnostic` is one structured finding of the static analyzer:
a stable rule ID (``EBDA001``...), a severity, a human message, a
:class:`Location` pointing into the *design* (partition index, turn,
channel class — designs have no source files, so locations are logical),
and an optional fix hint.

Rules self-register through :func:`register_rule`; :data:`RULES` is the
catalog reporters and the CLI consume (IDs, titles, paper citations).
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.analyze.unit import DesignUnit

__all__ = [
    "RULES",
    "Diagnostic",
    "Location",
    "RuleInfo",
    "Severity",
    "register_rule",
    "rule_ids",
]


class Severity(str, Enum):
    """Diagnostic severity, ordered ``ERROR > WARNING > NOTE``.

    The names map one-to-one onto SARIF 2.1.0 result levels.
    """

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    @property
    def rank(self) -> int:
        """Numeric rank for threshold comparisons (higher = more severe)."""
        return {"error": 3, "warning": 2, "note": 1}[self.value]

    def at_least(self, other: Severity) -> bool:
        """True when this severity is at least as severe as ``other``."""
        return self.rank >= other.rank


@dataclass(frozen=True)
class Location:
    """A logical location inside an EbDa design.

    Any subset of the fields may be set; :meth:`describe` renders the most
    specific available form.  ``partition`` is the 0-based index into the
    partition sequence (the paper's reading order).
    """

    partition: int | None = None
    partition_name: str = ""
    channel: str = ""
    turn: str = ""

    def describe(self) -> str:
        """Human-readable rendering, e.g. ``P0(PA) turn X+->Y-``."""
        parts: list[str] = []
        if self.partition is not None:
            tag = f"P{self.partition}"
            if self.partition_name:
                tag += f"({self.partition_name})"
            parts.append(tag)
        elif self.partition_name:
            parts.append(self.partition_name)
        if self.channel:
            parts.append(f"channel {self.channel}")
        if self.turn:
            parts.append(f"turn {self.turn}")
        return " ".join(parts) or "design"

    def fully_qualified(self, design: str) -> str:
        """SARIF ``fullyQualifiedName``: design-rooted logical path."""
        return f"{design or 'design'}::{self.describe()}"

    def to_dict(self) -> dict[str, object]:
        out: dict[str, object] = {}
        if self.partition is not None:
            out["partition"] = self.partition
        if self.partition_name:
            out["partition_name"] = self.partition_name
        if self.channel:
            out["channel"] = self.channel
        if self.turn:
            out["turn"] = self.turn
        return out


@dataclass(frozen=True)
class Diagnostic:
    """One finding: rule, severity, message, design location, fix hint."""

    rule: str
    severity: Severity
    message: str
    location: Location = field(default_factory=Location)
    hint: str = ""
    design: str = ""

    def fingerprint(self) -> str:
        """Stable identity for baselines and SARIF ``partialFingerprints``.

        Deliberately excludes the message text (wording may be polished
        without invalidating baselines): rule + design + location.
        """
        key = "\x1f".join(
            (
                self.rule,
                self.design,
                str(self.location.partition),
                self.location.partition_name,
                self.location.channel,
                self.location.turn,
            )
        )
        return hashlib.sha256(key.encode()).hexdigest()[:16]

    def render(self) -> str:
        """One-line human form: ``EBDA001 error P0(PA): message``."""
        line = f"{self.rule} {self.severity.value:7s} {self.location.describe()}: {self.message}"
        if self.hint:
            line += f"\n    hint: {self.hint}"
        return line

    def to_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "location": self.location.to_dict(),
            "fingerprint": self.fingerprint(),
        }
        if self.hint:
            out["hint"] = self.hint
        if self.design:
            out["design"] = self.design
        return out


#: A rule implementation: yields diagnostics for one design unit.
RuleFunc = Callable[["DesignUnit"], Iterator[Diagnostic]]


@dataclass(frozen=True)
class RuleInfo:
    """Registry metadata for one lint rule."""

    id: str
    title: str
    severity: Severity
    #: Paper grounding, e.g. ``"Theorem 1"`` or ``"Section 4"``.
    citation: str
    func: RuleFunc
    #: Topology-dependent rules are skipped when the unit has no topology.
    requires_topology: bool = False
    #: Opt-in rules run only when explicitly selected.
    default_enabled: bool = True
    #: Longer description for the rule catalog / SARIF descriptors.
    description: str = ""


#: The rule catalog, keyed by stable ID, in registration (ID) order.
RULES: dict[str, RuleInfo] = {}


def register_rule(
    id: str,
    title: str,
    severity: Severity,
    citation: str,
    *,
    requires_topology: bool = False,
    default_enabled: bool = True,
    description: str = "",
) -> Callable[[RuleFunc], RuleFunc]:
    """Class-level decorator registering a rule implementation under ``id``."""

    def wrap(func: RuleFunc) -> RuleFunc:
        if id in RULES:
            raise ValueError(f"duplicate rule id {id!r}")
        RULES[id] = RuleInfo(
            id=id,
            title=title,
            severity=severity,
            citation=citation,
            func=func,
            requires_topology=requires_topology,
            default_enabled=default_enabled,
            description=description or (func.__doc__ or "").strip().split("\n")[0],
        )
        return func

    return wrap


def rule_ids(*, include_optional: bool = True) -> tuple[str, ...]:
    """All registered rule IDs, sorted."""
    return tuple(
        sorted(
            rid
            for rid, info in RULES.items()
            if include_optional or info.default_enabled
        )
    )
