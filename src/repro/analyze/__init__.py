"""Static design analysis: a simulation-free lint pass over EbDa designs.

The paper's central promise is that deadlock freedom is decidable from the
*structure* of a design — partitions, turns, channel classes — without
enumerating a concrete channel dependency graph or simulating traffic.
This package takes that promise literally: :class:`Analyzer` runs a
catalog of paper-grounded rules (``EBDA001``...) over a
:class:`DesignUnit` and emits structured :class:`Diagnostic` records with
design locations and fix hints, renderable as human text, strict JSON, or
SARIF 2.1.0 for code-scanning UIs.

Quick start::

    from repro.analyze import DesignUnit, lint_design

    unit = DesignUnit.from_sequence("X+ X- -> Y+ Y-", name="xy")
    report = lint_design(unit)
    assert report.ok

The theorem-mirror rules (EBDA001-005) consume the exact same structured
violation streams as the fuzzer's theorem oracle, which lets the
differential fuzzer run the analyzer as a fourth oracle and cross-check
the two verdicts on every trial (:func:`static_errors`).
"""

from repro.analyze.baseline import apply_baseline, load_baseline, write_baseline
from repro.analyze.certcheck import CheckResult, check_certificate, check_certificates
from repro.analyze.diagnostics import (
    RULES,
    Diagnostic,
    Location,
    RuleInfo,
    Severity,
    register_rule,
    rule_ids,
)
from repro.analyze.engine import AnalysisReport, Analyzer, lint_design, static_errors
from repro.analyze.reporters import render_json, render_sarif, render_text
from repro.analyze.rings import link_rings, unbroken_rings, unbroken_wrap_rings
from repro.analyze.rules import THEOREM_MIRROR_RULES
from repro.analyze.symbolic import (
    SYMBOLIC_FAMILIES,
    SYMBOLIC_RULES,
    Certificate,
    SymbolicDesign,
    SymbolicReport,
    certify,
    certify_all,
    differential_gate,
    symbolic_family,
)
from repro.analyze.unit import DesignUnit, TableProtocol

__all__ = [
    "RULES",
    "SYMBOLIC_FAMILIES",
    "SYMBOLIC_RULES",
    "THEOREM_MIRROR_RULES",
    "AnalysisReport",
    "Analyzer",
    "Certificate",
    "CheckResult",
    "DesignUnit",
    "Diagnostic",
    "Location",
    "RuleInfo",
    "Severity",
    "SymbolicDesign",
    "SymbolicReport",
    "TableProtocol",
    "apply_baseline",
    "certify",
    "certify_all",
    "check_certificate",
    "check_certificates",
    "differential_gate",
    "link_rings",
    "lint_design",
    "load_baseline",
    "register_rule",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_ids",
    "static_errors",
    "symbolic_family",
    "unbroken_rings",
    "unbroken_wrap_rings",
    "write_baseline",
]
