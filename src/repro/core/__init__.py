"""EbDa core theory: channels, partitions, theorems, turn extraction.

The public surface of the paper's contribution.  Typical flow::

    from repro.core import PartitionSequence, extract_turns

    design = PartitionSequence.parse("X+ X- Y- -> Y+")   # north-last
    turns = extract_turns(design.validate())
"""

from repro.core.channel import (
    NEG,
    POS,
    Channel,
    channels,
    complete_pairs,
    dim_index,
    dim_name,
    parse_star,
)
from repro.core.partition import Partition
from repro.core.sequence import PartitionSequence
from repro.core.theorems import (
    TheoremReport,
    check_sequence,
    check_theorem1,
    check_theorem2,
    check_theorem3,
    require_sequence,
    require_theorem1,
)
from repro.core.turns import Turn, TurnKind, TurnSet, turn, turnset_from_strings
from repro.core.extraction import (
    degree90_turns,
    extract_turns,
    theorem1_turns,
    theorem2_turns,
    theorem3_turns,
)
from repro.core.arrangements import (
    DimensionSet,
    arrangement1,
    arrangement2,
    arrangement3,
    sets_from_vc_counts,
)
from repro.core.partitioning import (
    head_selector,
    merge_deficient,
    partition_sets,
    partition_vc_budget,
    region_balancing_selector,
)
from repro.core.derivation import (
    derivation_space_size,
    derive_by_rotation,
    fully_deterministic,
    split_partitions,
    trace_orders,
)
from repro.core.exceptional import (
    negative_first,
    option_for_signs,
    positive_first,
    two_partition_options,
)
from repro.core.minimal import (
    is_structurally_fully_adaptive,
    min_channels,
    minimal_fully_adaptive,
    per_region_construction,
    region_assignment,
    vc_requirements,
)
from repro.core.regions import (
    all_regions,
    covers_all_regions,
    region_name,
    region_of,
    regions_covered,
    uncovered_regions,
)
from repro.core.planar import planar_adaptive_design, planar_channel_count
from repro.core.arbitrary import (
    ArbitraryVerdict,
    dependency_relation_from_routing,
    dependency_relation_from_turns,
    existence_verdict,
    verdict_from_routing,
    verdict_from_turns,
)
from repro.core import catalog

__all__ = [
    "NEG",
    "POS",
    "Channel",
    "channels",
    "complete_pairs",
    "dim_index",
    "dim_name",
    "parse_star",
    "Partition",
    "PartitionSequence",
    "TheoremReport",
    "check_sequence",
    "check_theorem1",
    "check_theorem2",
    "check_theorem3",
    "require_sequence",
    "require_theorem1",
    "Turn",
    "TurnKind",
    "TurnSet",
    "turn",
    "turnset_from_strings",
    "degree90_turns",
    "extract_turns",
    "theorem1_turns",
    "theorem2_turns",
    "theorem3_turns",
    "DimensionSet",
    "arrangement1",
    "arrangement2",
    "arrangement3",
    "sets_from_vc_counts",
    "head_selector",
    "merge_deficient",
    "partition_sets",
    "partition_vc_budget",
    "region_balancing_selector",
    "derivation_space_size",
    "derive_by_rotation",
    "fully_deterministic",
    "split_partitions",
    "trace_orders",
    "negative_first",
    "option_for_signs",
    "positive_first",
    "two_partition_options",
    "is_structurally_fully_adaptive",
    "min_channels",
    "minimal_fully_adaptive",
    "per_region_construction",
    "region_assignment",
    "vc_requirements",
    "all_regions",
    "covers_all_regions",
    "region_name",
    "region_of",
    "regions_covered",
    "uncovered_regions",
    "planar_adaptive_design",
    "planar_channel_count",
    "ArbitraryVerdict",
    "dependency_relation_from_routing",
    "dependency_relation_from_turns",
    "existence_verdict",
    "verdict_from_routing",
    "verdict_from_turns",
    "catalog",
]
