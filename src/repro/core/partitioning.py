"""Algorithm 1 — the partitioning procedure (Section 5.2).

Given arranged dimension sets, the procedure repeatedly forms a partition
from the leading set's first D-pair plus one channel from every other set,
removes the consumed channels, re-orders the sets by remaining pair count,
and recurses until all sets are empty.  Trailing deficient partitions are
merged into earlier ones when Theorem 1 permits.

The paper leaves one degree of freedom open: *which* channel each non-lead
set contributes (its worked example picks ``Y2+`` over ``Y2-`` "to cover
the neighbouring regions").  The library exposes this as a *selector*
strategy; :func:`region_balancing_selector` reproduces the paper's choice
by steering each new partition toward still-uncovered regions, while
:func:`head_selector` follows the pseudo-code literally.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.core.arrangements import DimensionSet, arrangement1
from repro.core.channel import NEG, POS, Channel
from repro.core.partition import Partition
from repro.core.regions import Region, all_regions, regions_covered
from repro.core.sequence import PartitionSequence
from repro.core.theorems import check_theorem1
from repro.errors import PartitionError

#: A selector receives (the set to draw from, channels already chosen for the
#: partition under construction, regions covered so far, the network
#: dimensionality) and returns the channel to contribute.
Selector = Callable[[DimensionSet, list[Channel], set[Region], int], Channel]


def head_selector(
    dimset: DimensionSet, chosen: list[Channel], covered: set[Region], n_dims: int
) -> Channel:
    """Literal Algorithm 1: always contribute the set's first channel."""
    return dimset.head()


def region_balancing_selector(
    dimset: DimensionSet, chosen: list[Channel], covered: set[Region], n_dims: int
) -> Channel:
    """The paper's worked-example policy: steer toward uncovered regions.

    Chooses the direction (sign) that, combined with the channels already
    chosen for this partition, covers regions not yet served by earlier
    partitions.  Falls back to the set head when both signs are equally
    useful or one is unavailable.
    """
    options = [s for s in (POS, NEG) if dimset.first_with_sign(s) is not None]
    if len(options) < 2:
        return dimset.head()

    def newly_covered(sign: int) -> int:
        # Count full regions still reachable by the partial candidate: a
        # region is compatible when every dimension the candidate already
        # touches points the region's way (untouched dimensions are free).
        candidate = chosen + [Channel(dimset.dim, sign)]
        signs_by_dim: dict[int, set[int]] = {}
        for ch in candidate:
            signs_by_dim.setdefault(ch.dim, set()).add(ch.sign)
        return sum(
            1
            for r in all_regions(n_dims)
            if r not in covered
            and all(r[d] in signs for d, signs in signs_by_dim.items())
        )

    best = max(options, key=newly_covered)
    picked = dimset.first_with_sign(best)
    assert picked is not None
    return picked


def _partition_names() -> "Callable[[], str]":
    letters = iter("ABCDEFGHIJKLMNOPQRSTUVWXYZ")
    counter = [0]

    def next_name() -> str:
        try:
            return "P" + next(letters)
        except StopIteration:
            counter[0] += 1
            return f"P{counter[0] + 26}"

    return next_name


def partition_sets(
    sets: Sequence[DimensionSet],
    *,
    selector: Selector = region_balancing_selector,
    reorder: bool = True,
    merge: bool = True,
) -> PartitionSequence:
    """Run Algorithm 1 over arranged dimension sets.

    Parameters
    ----------
    sets:
        The arranged sets (Set1 first).  Use
        :func:`repro.core.arrangements.arrangement1` or hand-arrange them.
    selector:
        Strategy for the channel each non-lead set contributes.
    reorder:
        Re-sort sets by remaining pair count between iterations (line 8 of
        the pseudo-code).  Disable to follow a fixed arrangement strictly.
    merge:
        Merge trailing deficient partitions into earlier ones when the
        union still satisfies Theorem 1 (line 3).

    Returns
    -------
    PartitionSequence
        The extracted design; always satisfies Theorems 1 and 3.

    >>> from repro.core.arrangements import sets_from_vc_counts
    >>> seq = partition_sets(sets_from_vc_counts([1, 2]))
    >>> seq.arrow_notation()
    'Y+ Y- X+ -> Y2+ Y2- X-'
    """
    working = [s for s in sets if not s.is_empty]
    if not working:
        raise PartitionError("no channels to partition")
    if reorder:
        working = arrangement1(working)

    name_of = _partition_names()
    partitions: list[Partition] = []
    covered: set[Region] = set()
    n_dims = max(s.dim for s in working) + 1

    while working:
        lead = working[0]
        chosen: list[Channel] = []
        if lead.pair_count >= 1:
            pos, neg = lead.head_pair()
            chosen.extend([pos, neg])
        else:
            chosen.append(lead.head())
        for other in working[1:]:
            chosen.append(selector(other, chosen, covered, n_dims))

        part = Partition(tuple(chosen), name=name_of())
        check_theorem1(part).raise_if_failed()
        partitions.append(part)
        covered.update(regions_covered(part, n_dims))

        working = [s.without(chosen) for s in working]
        working = [s for s in working if not s.is_empty]
        if reorder:
            working = arrangement1(working)

    if merge:
        partitions = merge_deficient(partitions)
    return PartitionSequence(tuple(partitions))


def merge_deficient(partitions: list[Partition]) -> list[Partition]:
    """Merge trailing deficient partitions into earlier ones (Algorithm 1 line 3).

    A partition is *deficient* when it holds fewer channels than the
    largest partition.  Each deficient trailing partition is folded into
    the earliest partition whose union still satisfies Theorem 1; if no
    host exists it stays separate (still deadlock-free, just less
    adaptive).
    """
    if len(partitions) <= 1:
        return list(partitions)
    full_size = max(len(p) for p in partitions)
    kept: list[Partition] = []
    pending: list[Partition] = []
    for part in partitions:
        if len(part) < full_size:
            pending.append(part)
        else:
            kept.append(part)
    if not pending:
        return list(partitions)

    for orphan in pending:
        host_idx = None
        for i, host in enumerate(kept):
            union = Partition(host.channels + orphan.channels, name=host.name)
            if check_theorem1(union).ok:
                host_idx = i
                kept[i] = union
                break
        if host_idx is None:
            kept.append(orphan)
    return kept


def partition_vc_budget(
    vc_counts: Sequence[int],
    *,
    selector: Selector = region_balancing_selector,
    merge: bool = True,
) -> PartitionSequence:
    """Convenience wrapper: budget -> Arrangement 1 -> Algorithm 1.

    >>> partition_vc_budget([1, 1]).arrow_notation()
    'X+ X- Y+ -> Y-'
    """
    from repro.core.arrangements import sets_from_vc_counts

    return partition_sets(
        arrangement1(sets_from_vc_counts(vc_counts)), selector=selector, merge=merge
    )
