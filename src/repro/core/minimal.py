"""Section 4 — maximum adaptiveness with the minimum number of channels.

The paper proves the minimum number of channels for fully adaptive routing
in an n-dimensional network is ``N = (n+1) * 2^(n-1)``.  This module
provides that formula plus the two constructions from the proof:

* :func:`per_region_construction` — one partition per region, ``2^n``
  partitions of ``n`` channels each (``n * 2^n`` channels; Figures 7(a)
  and 9(a));
* :func:`minimal_fully_adaptive` — merge neighbouring region pairs along a
  chosen dimension, yielding ``2^(n-1)`` partitions of ``n+1`` channels
  each (``(n+1) * 2^(n-1)`` channels; Figures 7(b)/(c) and 9(b)/(c)).

Both constructions are validated against Theorems 1/3 and cover all
``2^n`` regions — the structural definition of a fully adaptive design.
"""

from __future__ import annotations

from itertools import product

from repro.core.channel import NEG, POS, Channel, dim_name
from repro.core.partition import Partition
from repro.core.regions import all_regions, covers_all_regions, region_name
from repro.core.sequence import PartitionSequence
from repro.core.theorems import require_sequence
from repro.errors import PartitionError


def min_channels(n: int) -> int:
    """The paper's closed form: ``(n+1) * 2^(n-1)``.

    >>> [min_channels(n) for n in (1, 2, 3, 4)]
    [2, 6, 16, 40]
    """
    if n < 1:
        raise PartitionError("dimension must be >= 1")
    return (n + 1) * 2 ** (n - 1)


def per_region_construction(n: int) -> PartitionSequence:
    """One partition per region: ``2^n`` partitions, ``n`` channels each.

    VC numbers are allocated per (dimension, sign) in order of use, so the
    2D instance matches Figure 7(a): ``PA[X1+ Y1+] PB[X2+ Y1-] ...``.
    """
    if n < 1:
        raise PartitionError("dimension must be >= 1")
    vc_next: dict[tuple[int, int], int] = {}
    parts: list[Partition] = []
    for i, region in enumerate(all_regions(n)):
        chans: list[Channel] = []
        for dim in range(n):
            key = (dim, region[dim])
            vc = vc_next.get(key, 0) + 1
            vc_next[key] = vc
            chans.append(Channel(dim, region[dim], vc))
        parts.append(Partition(tuple(chans), name=f"P{chr(ord('A') + i)}"))
    return require_sequence(PartitionSequence(tuple(parts)))


def minimal_fully_adaptive(n: int, pair_dim: int | None = None) -> PartitionSequence:
    """The minimum-channel fully adaptive design of Section 4.

    Neighbouring regions differing only in dimension ``pair_dim`` are
    merged: their partition receives a complete pair along ``pair_dim``
    (fresh VC per partition) plus one channel per remaining dimension.
    The result has ``2^(n-1)`` partitions and exactly
    :func:`min_channels(n)` channels.

    ``pair_dim`` defaults to the last dimension, reproducing Figure 7(b)
    (the DyXY design, pairing Y) for ``n=2`` and Figure 9(b) for ``n=3``.

    >>> minimal_fully_adaptive(2).arrow_notation()
    'X+ Y+ Y- -> X- Y2+ Y2-'
    """
    if n < 1:
        raise PartitionError("dimension must be >= 1")
    if pair_dim is None:
        pair_dim = n - 1
    if not 0 <= pair_dim < n:
        raise PartitionError(f"pair_dim {pair_dim} out of range for {n} dimensions")

    free_dims = [d for d in range(n) if d != pair_dim]
    vc_next: dict[tuple[int, int], int] = {}
    parts: list[Partition] = []
    for i, signs in enumerate(product((POS, NEG), repeat=len(free_dims))):
        chans: list[Channel] = []
        for dim, sign in zip(free_dims, signs):
            key = (dim, sign)
            vc = vc_next.get(key, 0) + 1
            vc_next[key] = vc
            chans.append(Channel(dim, sign, vc))
        pair_vc = i + 1
        chans.append(Channel(pair_dim, POS, pair_vc))
        chans.append(Channel(pair_dim, NEG, pair_vc))
        parts.append(Partition(tuple(chans), name=f"P{chr(ord('A') + i)}"))
    seq = require_sequence(PartitionSequence(tuple(parts)))
    assert seq.channel_count == min_channels(n)
    return seq


def vc_requirements(sequence: PartitionSequence) -> dict[str, int]:
    """VCs needed per dimension to realise a design on hardware.

    A dimension needs as many VCs as the largest VC index any of its
    channels carries.  For :func:`minimal_fully_adaptive(3)` this is the
    paper's "2, 2, and 4 virtual channels along the X, Y, and Z dimensions".

    >>> vc_requirements(minimal_fully_adaptive(3))
    {'X': 2, 'Y': 2, 'Z': 4}
    """
    need: dict[int, int] = {}
    for ch in sequence.all_channels:
        need[ch.dim] = max(need.get(ch.dim, 0), ch.vc)
    return {dim_name(d): need[d] for d in sorted(need)}


def is_structurally_fully_adaptive(sequence: PartitionSequence, n: int) -> bool:
    """Section 4 criterion: every region is covered by a single partition."""
    return covers_all_regions(sequence, n)


def region_assignment(sequence: PartitionSequence, n: int) -> dict[str, list[str]]:
    """Which partition serves which regions, in paper notation.

    >>> region_assignment(minimal_fully_adaptive(2), 2)['PA']
    ['NE', 'SE']
    """
    from repro.core.regions import regions_covered

    out: dict[str, list[str]] = {}
    for part in sequence:
        out[part.name or "?"] = [region_name(r) for r in regions_covered(part, n)]
    return out
