"""Catalog of the paper's named designs (Sections 4 and 6).

Every partitioning option the paper writes out explicitly is available
here as a constructor returning a validated
:class:`~repro.core.sequence.PartitionSequence`:

* the five Section-4 options P1..P5 (Figure 6);
* Tables 1, 2 and 3 of Section 6.1;
* the Odd-Even design (Figure 10 / Table 4) using even/odd column classes;
* the Hamiltonian-path design (§6.2) using even/odd row classes;
* the partial-3D design of §6.3 (Table 5) and the 2D/3D minimal designs.

These are the ground-truth inputs for the benchmark harness.
"""

from __future__ import annotations

from repro.core.minimal import minimal_fully_adaptive
from repro.core.sequence import PartitionSequence


def _seq(text: str) -> PartitionSequence:
    return PartitionSequence.parse(text).validate()


# ---------------------------------------------------------------------------
# Section 4 / Figure 6 — the five partitioning forms P1..P5
# ---------------------------------------------------------------------------

def p1_xy() -> PartitionSequence:
    """P1: four singleton partitions — the XY routing algorithm (Fig. 6a)."""
    return _seq("X+ -> X- -> Y+ -> Y-")


def p2_partially_adaptive() -> PartitionSequence:
    """P2: three partitions — fully adaptive in NE only (Fig. 6b)."""
    return _seq("Y- -> X- -> Y+ X+")


def p3_west_first() -> PartitionSequence:
    """P3: the west-first turn model (Fig. 6c)."""
    return _seq("X- -> X+ Y+ Y-")


def p4_negative_first() -> PartitionSequence:
    """P4: the negative-first turn model (Fig. 6d)."""
    return _seq("X- Y- -> X+ Y+")


def p5_west_first_vcs() -> PartitionSequence:
    """P5: west-first with extra Y VCs inside PB (Fig. 6e).

    Adds identical turns and U-/I-turns but no extra minimal adaptivity.
    """
    return _seq("X- -> X+ Y+ Y- Y2+ Y2-")


def north_last() -> PartitionSequence:
    """The north-last turn model as derived in the Theorem 3 example (Fig. 5)."""
    return _seq("X+ X- Y- -> Y+")


# ---------------------------------------------------------------------------
# Section 6.1 — Tables 1, 2 and 3
# ---------------------------------------------------------------------------

#: Entries of Table 1 in reading order (columns left to right, rows top to
#: bottom).  Each guarantees maximum adaptiveness for 4 channels in 2D.
_TABLE1 = (
    "X+ X- Y+ -> Y-", "Y+ Y- X+ -> X-", "X+ Y+ -> X- Y-",
    "X+ X- Y- -> Y+", "Y+ Y- X- -> X+", "X+ Y- -> X- Y+",
    "Y- -> X+ X- Y+", "X- -> Y+ Y- X+", "X- Y- -> X+ Y+",
    "Y+ -> X+ X- Y-", "X+ -> Y+ Y- X-", "X- Y+ -> X+ Y-",
)

#: Table 1 entries the paper highlights as the three unique turn models.
TABLE1_HIGHLIGHTED = {
    "north-last": "X+ X- Y- -> Y+",
    "west-first": "X- -> Y+ Y- X+",
    "negative-first": "X- Y- -> X+ Y+",
}

_TABLE2 = (
    "X+ Y+ -> X- -> Y-", "X+ Y- -> X- -> Y+",
    "X- Y+ -> X+ -> Y-", "X- Y- -> X+ -> Y+",
)

_TABLE3 = (
    "X+ -> Y+ -> X- -> Y-", "X+ -> Y- -> X- -> Y+",
    "X- -> Y+ -> X+ -> Y-", "X- -> Y- -> X+ -> Y+",
    "X+ -> X- -> Y+ -> Y-", "Y+ -> Y- -> X+ -> X-",
)


def table1_options() -> tuple[PartitionSequence, ...]:
    """The 12 maximum-adaptiveness partitioning options of Table 1."""
    return tuple(_seq(t) for t in _TABLE1)


def table2_options() -> tuple[PartitionSequence, ...]:
    """The four three-partition options of Table 2."""
    return tuple(_seq(t) for t in _TABLE2)


def table3_options() -> tuple[PartitionSequence, ...]:
    """The six deterministic partitioning options of Table 3."""
    return tuple(_seq(t) for t in _TABLE3)


# ---------------------------------------------------------------------------
# Section 6.2 — Odd-Even and Hamiltonian-path designs
# ---------------------------------------------------------------------------

def odd_even_partitions() -> PartitionSequence:
    """The Odd-Even turn model as two partitions (Fig. 10b).

    ``PA = {X-  Ye*}`` and ``PB = {X+  Yo*}`` where ``Ye``/``Yo`` are the Y
    channels of even/odd columns.  Column parity is a spatial class; the
    topology layer binds class ``e``/``o`` to the X coordinate.
    """
    return PartitionSequence.of("X- Y+@e Y-@e", "X+ Y+@o Y-@o").validate()


def hamiltonian_partitions() -> PartitionSequence:
    """The Hamiltonian-path strategy as two partitions (§6.2).

    ``PA = {Xe+ Xo- Y+}``, ``PB = {Xe- Xo+ Y-}`` with X channels classed by
    row parity (the Hamiltonian snake traverses rows alternately).
    """
    return PartitionSequence.of("X+@e X-@o Y+", "X-@e X+@o Y-").validate()


# ---------------------------------------------------------------------------
# Section 6.3 — vertically partially connected 3D design (Table 5)
# ---------------------------------------------------------------------------

def partial3d_partitions() -> PartitionSequence:
    """The §6.3 design: ``PA[X1+ Y1* Z1+] -> PB[X1- Y2* Z1-]``.

    Uses 1, 2 and 1 VCs along X, Y and Z (vs Elevator-First's 2, 2, 1)
    while allowing 30 90-degree turns (vs 16).
    """
    return PartitionSequence.of("X+ Y+ Y- Z+", "X- Y2+ Y2- Z-").validate()


# ---------------------------------------------------------------------------
# Section 4 minimal designs, re-exported with their paper names
# ---------------------------------------------------------------------------

def dyxy_partitions() -> PartitionSequence:
    """Figure 7(b): the 6-channel 2D fully adaptive design (DyXY)."""
    return minimal_fully_adaptive(2, pair_dim=1)


def fig7c_partitions() -> PartitionSequence:
    """Figure 7(c): the alternative 6-channel design pairing X."""
    return minimal_fully_adaptive(2, pair_dim=0)


def fig9b_partitions() -> PartitionSequence:
    """Figure 9(b): 3D minimal design with 2, 2, 4 VCs (pairs along Z)."""
    return minimal_fully_adaptive(3, pair_dim=2)


def fig9c_partitions() -> PartitionSequence:
    """Figure 9(c): 3D minimal design with 3, 2, 3 VCs.

    Built by the paper's worked §5 example: the first two partitions pair
    Z, the last two pair X; Y contributes single channels throughout.
    """
    return PartitionSequence.of(
        "Z+ Z- X+ Y+",
        "Z2+ Z2- X- Y2+",
        "X2+ X2- Z3+ Y-",
        "X3+ X3- Z3- Y2-",
    ).validate()


# ---------------------------------------------------------------------------
# Beyond-mesh designs used by the arbitrary-network fuzzing families
# ---------------------------------------------------------------------------

def dragonfly_minimal() -> PartitionSequence:
    """Minimal dragonfly routing: local, global, then a second local VC.

    Channels are classed ``l`` (intra-group) and ``g`` (inter-group) by the
    topology layer; the ascending VC on the second local hop breaks the
    l -> g -> l dependency cycle exactly as the classic minimal scheme does.
    """
    return _seq("X+@l -> Y+@g -> X2+@l")


def dragonfly_valiant() -> PartitionSequence:
    """Valiant-style dragonfly routing via an intermediate group.

    Two global hops (to the random intermediate group, then to the
    destination group) each followed by a fresh local VC; VC numbers
    ascend along any l-g-l-g-l path so the design is deadlock-free.
    """
    return _seq("X+@l -> Y+@g -> X2+@l -> Y2+@g -> X3+@l")


def fattree_updown() -> PartitionSequence:
    """Up*/down* routing on a fat-tree: all up hops, then all down hops.

    Channels are classed ``u``/``d`` by link direction; forbidding
    up-after-down makes every route a single up-phase/down-phase pair.
    """
    return _seq("X+@u -> X-@d")


#: Name -> constructor map for tooling (examples, CLI-style sweeps).
NAMED_DESIGNS = {
    "xy": p1_xy,
    "partially-adaptive": p2_partially_adaptive,
    "west-first": p3_west_first,
    "negative-first": p4_negative_first,
    "west-first-vcs": p5_west_first_vcs,
    "north-last": north_last,
    "odd-even": odd_even_partitions,
    "hamiltonian": hamiltonian_partitions,
    "partial3d": partial3d_partitions,
    "dyxy": dyxy_partitions,
    "fig7c": fig7c_partitions,
    "fig9b": fig9b_partitions,
    "fig9c": fig9c_partitions,
    "dragonfly-minimal": dragonfly_minimal,
    "dragonfly-valiant": dragonfly_valiant,
    "fattree-updown": fattree_updown,
}


def design(name: str) -> PartitionSequence:
    """Look up a named design.

    >>> design("north-last").arrow_notation()
    'X+ X- Y- -> Y+'
    """
    try:
        return NAMED_DESIGNS[name]()
    except KeyError:
        known = ", ".join(sorted(NAMED_DESIGNS))
        raise KeyError(f"unknown design {name!r}; known designs: {known}") from None
