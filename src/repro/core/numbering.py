"""Theorem-2 numbering arithmetic (Figure 4 of the paper).

When a partition holds ``n`` channels along one dimension — ``a`` in the
positive and ``b`` in the negative direction — numbering them 1..n and
allowing only ascending transitions yields exactly ``n(n-1)/2`` U-/I-turns,
of which ``a*b`` are U-turns and ``C(a,2) + C(b,2)`` are I-turns.  The paper
states the identity

    n(n-1)/2 = a*b + a!/(2(a-2)!) + b!/(2(b-2)!)

This module provides the counting functions and the identity check used by
the Figure 4 benchmark and the property tests.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from math import comb

from repro.core.channel import Channel, POS
from repro.core.partition import Partition
from repro.core.turns import Turn, TurnKind


def total_ui_turns(n: int) -> int:
    """Total U+I turns for ``n`` channels numbered ascending: n(n-1)/2."""
    if n < 0:
        raise ValueError("channel count cannot be negative")
    return n * (n - 1) // 2


def uturn_count(a: int, b: int) -> int:
    """Number of U-turns for ``a`` positive and ``b`` negative channels: a*b."""
    if a < 0 or b < 0:
        raise ValueError("channel counts cannot be negative")
    return a * b


def iturn_count(a: int, b: int) -> int:
    """Number of I-turns: C(a,2) + C(b,2)."""
    if a < 0 or b < 0:
        raise ValueError("channel counts cannot be negative")
    return comb(a, 2) + comb(b, 2)


def identity_holds(a: int, b: int) -> bool:
    """Check the paper's identity n(n-1)/2 = ab + C(a,2) + C(b,2).

    >>> identity_holds(3, 3)
    True
    """
    return total_ui_turns(a + b) == uturn_count(a, b) + iturn_count(a, b)


@dataclass(frozen=True)
class UITurnCensus:
    """Breakdown of the U-/I-turns a numbering generates in one dimension."""

    dim: int
    positive_channels: int
    negative_channels: int
    u_turns: tuple[Turn, ...]
    i_turns: tuple[Turn, ...]

    @property
    def n(self) -> int:
        """Total channels along the dimension."""
        return self.positive_channels + self.negative_channels

    @property
    def total(self) -> int:
        """U-turns + I-turns actually generated."""
        return len(self.u_turns) + len(self.i_turns)

    @property
    def expected_total(self) -> int:
        """n(n-1)/2 — what the formula predicts."""
        return total_ui_turns(self.n)

    def matches_formula(self) -> bool:
        """True when generated counts equal the closed-form prediction."""
        return (
            len(self.u_turns) == uturn_count(self.positive_channels, self.negative_channels)
            and len(self.i_turns) == iturn_count(self.positive_channels, self.negative_channels)
        )


def census_for_ordering(ordering: Sequence[Channel]) -> UITurnCensus:
    """Generate the ascending-order U-/I-turns for one dimension's channels.

    ``ordering`` is the Theorem-2 numbering (index = rank).  All channels
    must share one dimension.

    >>> from repro.core.channel import channels
    >>> c = census_for_ordering(channels("Y1+ Y1- Y2+ Y2- Y3+ Y3-"))
    >>> (len(c.u_turns), len(c.i_turns), c.total)
    (9, 6, 15)
    """
    if not ordering:
        raise ValueError("ordering must contain at least one channel")
    dims = {ch.dim for ch in ordering}
    if len(dims) != 1:
        raise ValueError(f"channels span several dimensions: {sorted(dims)}")
    u: list[Turn] = []
    i_: list[Turn] = []
    for lo in range(len(ordering)):
        for hi in range(lo + 1, len(ordering)):
            t = Turn(ordering[lo], ordering[hi])
            (u if t.kind == TurnKind.UTURN else i_).append(t)
    a = sum(1 for ch in ordering if ch.sign == POS)
    return UITurnCensus(
        dim=next(iter(dims)),
        positive_channels=a,
        negative_channels=len(ordering) - a,
        u_turns=tuple(u),
        i_turns=tuple(i_),
    )


def census_for_partition(partition: Partition, dim: int) -> UITurnCensus:
    """Census of the U-/I-turns Theorem 2 grants in ``dim`` of a partition."""
    ordering = partition.channels_in_dim(dim)
    if not ordering:
        raise ValueError(f"partition {partition} has no channels in dimension {dim}")
    if dim in partition.complete_pair_dims:
        return census_for_ordering(ordering)
    # No complete pair: all I-turns in both directions, no U-turns possible
    # between present channels of one sign... unless both signs absent? A dim
    # without a complete pair has channels of a single sign only when cls/vc
    # differ; all ordered pairs are I-turns and all are allowed.
    i_turns = tuple(
        Turn(src, dst)
        for src in ordering
        for dst in ordering
        if src is not dst and src.sign == dst.sign
    )
    a = sum(1 for ch in ordering if ch.sign == POS)
    return UITurnCensus(
        dim=dim,
        positive_channels=a,
        negative_channels=len(ordering) - a,
        u_turns=(),
        i_turns=i_turns,
    )
