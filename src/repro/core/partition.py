"""Partitions of channels (Definition 2).

A :class:`Partition` is a set of channels that packets may use *arbitrarily
and repeatedly*: any 90-degree transition between two of its channels in
different dimensions is permitted, and — per Theorem 2 — U- and I-turns
between same-dimension channels are permitted in an ascending order over a
per-dimension channel numbering.

Partitions are immutable.  The channel order given at construction is
preserved; for dimensions holding a complete pair, that order *is* the
ascending numbering used by Theorem 2 (Figure 4 of the paper shows that any
numbering is valid, so the library lets callers pick one simply by ordering
the channels).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.core.channel import Channel, channels as _parse_channels, complete_pairs, dims_covered
from repro.errors import PartitionError


@dataclass(frozen=True)
class Partition:
    """An ordered, duplicate-free collection of channels.

    Parameters
    ----------
    channels:
        The channels in this partition.  Order is significant only for
        Theorem-2 numbering of same-dimension channels.
    name:
        Optional label (``"PA"``, ``"PB"``...) used in reports.
    """

    channels: tuple[Channel, ...]
    name: str = ""

    def __post_init__(self) -> None:
        seen: set[Channel] = set()
        for ch in self.channels:
            if ch in seen:
                raise PartitionError(f"duplicate channel {ch} in partition {self.name or '?'}")
            seen.add(ch)
        if not self.channels:
            raise PartitionError("a partition must contain at least one channel")

    # -- construction ------------------------------------------------------

    @classmethod
    def of(cls, spec: str | Iterable[str | Channel], name: str = "") -> "Partition":
        """Build a partition from compact channel notation.

        >>> Partition.of("X+ X- Y-", name="PA")
        Partition(PA: X+ X- Y-)
        """
        return cls(_parse_channels(spec), name=name)

    # -- presentation ------------------------------------------------------

    def __str__(self) -> str:
        body = " ".join(str(c) for c in self.channels)
        return f"{self.name}[{body}]" if self.name else f"[{body}]"

    def __repr__(self) -> str:
        body = " ".join(str(c) for c in self.channels)
        label = f"{self.name}: " if self.name else ""
        return f"Partition({label}{body})"

    # -- container protocol -------------------------------------------------

    def __iter__(self) -> Iterator[Channel]:
        return iter(self.channels)

    def __len__(self) -> int:
        return len(self.channels)

    def __contains__(self, ch: Channel) -> bool:
        return ch in self.channels

    # -- structure ---------------------------------------------------------

    @property
    def channel_set(self) -> frozenset[Channel]:
        """The channels as a set (order-insensitive identity)."""
        return frozenset(self.channels)

    @property
    def dims(self) -> tuple[int, ...]:
        """Sorted dimension indices covered by this partition."""
        return dims_covered(self.channels)

    @property
    def complete_pair_dims(self) -> tuple[int, ...]:
        """Dimensions along which this partition holds a complete D-pair."""
        return tuple(sorted(complete_pairs(self.channels)))

    @property
    def pair_count(self) -> int:
        """Number of dimensions with a complete pair (Theorem 1 cares about this)."""
        return len(self.complete_pair_dims)

    def channels_in_dim(self, dim: int) -> tuple[Channel, ...]:
        """The partition's channels along ``dim``, in numbering order."""
        return tuple(ch for ch in self.channels if ch.dim == dim)

    def is_disjoint_from(self, other: "Partition") -> bool:
        """Definition 6: partitions are disjoint when they share no channel."""
        return not (self.channel_set & other.channel_set)

    def sub_partition(self, chans: Iterable[Channel], name: str = "") -> "Partition":
        """A new partition restricted to ``chans`` (Corollary of Theorem 1).

        The relative numbering order of the surviving channels is kept.
        """
        keep = set(chans)
        missing = keep - self.channel_set
        if missing:
            raise PartitionError(
                f"channels {sorted(map(str, missing))} are not in partition {self.name or '?'}"
            )
        return Partition(
            tuple(ch for ch in self.channels if ch in keep),
            name=name or self.name,
        )

    def renamed(self, name: str) -> "Partition":
        """A copy with a new label."""
        return Partition(self.channels, name=name)
