"""Executable forms of the three EbDa theorems.

Each checker returns a :class:`TheoremReport` describing compliance, and a
``require_*`` variant raises :class:`~repro.errors.TheoremViolation` instead.
The checkers operate purely on channel *classes*; independent confirmation
on concrete networks lives in :mod:`repro.cdg`.

* :func:`check_theorem1` — at most one complete D-pair per partition.
* :func:`check_theorem2` — U-/I-turns follow an ascending numbering of the
  complete-pair dimension's channels (the library enforces this by
  construction in the turn extractor; the checker validates a turn list).
* :func:`check_theorem3` — partitions are pairwise disjoint and inter-
  partition turns only flow forward (ascending partition index).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.channel import Channel
from repro.core.partition import Partition
from repro.core.sequence import PartitionSequence
from repro.errors import TheoremViolation

if TYPE_CHECKING:  # imported lazily to avoid an import cycle at runtime
    from repro.core.turns import Turn


@dataclass(frozen=True)
class TheoremReport:
    """Outcome of a theorem check.

    Attributes
    ----------
    theorem:
        Which theorem (1, 2 or 3) was checked.
    ok:
        True when the construction complies.
    violations:
        Human-readable explanations for each violation found.
    """

    theorem: int
    ok: bool
    violations: tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return self.ok

    def raise_if_failed(self) -> "TheoremReport":
        """Raise :class:`TheoremViolation` when the check failed."""
        if not self.ok:
            raise TheoremViolation(self.theorem, "; ".join(self.violations))
        return self


# ---------------------------------------------------------------------------
# Theorem 1
# ---------------------------------------------------------------------------

def check_theorem1(partition: Partition) -> TheoremReport:
    """A partition is cycle-free iff it covers at most one complete D-pair.

    >>> check_theorem1(Partition.of("X+ X- Y+")).ok
    True
    >>> check_theorem1(Partition.of("X+ X- Y+ Y-")).ok
    False
    """
    pairs = partition.complete_pair_dims
    if len(pairs) <= 1:
        return TheoremReport(1, True)
    from repro.core.channel import dim_name

    names = ", ".join(dim_name(d) for d in pairs)
    return TheoremReport(
        1,
        False,
        (f"partition {partition} covers complete pairs in dimensions {names};"
         " at most one is allowed",),
    )


def require_theorem1(partition: Partition) -> Partition:
    """Validate Theorem 1, returning the partition for chaining."""
    check_theorem1(partition).raise_if_failed()
    return partition


# ---------------------------------------------------------------------------
# Theorem 2
# ---------------------------------------------------------------------------

def ascending_rank(partition: Partition, ch: Channel) -> int:
    """The Theorem-2 numbering rank of ``ch`` within its dimension.

    The construction order of the partition's channels defines the
    ascending numbering (Figure 4 shows any numbering is admissible).
    """
    same_dim = partition.channels_in_dim(ch.dim)
    return same_dim.index(ch)


def uturn_allowed(partition: Partition, src: Channel, dst: Channel) -> bool:
    """Is the U-/I-turn ``src -> dst`` permitted inside ``partition``?

    Rules (Theorem 2 and its corollary):

    * different dimensions: not a U/I-turn at all (returns False);
    * the dimension holds a complete pair: allowed iff ``dst`` ranks
      strictly higher than ``src`` in the ascending numbering;
    * no complete pair in the dimension: only I-turns are possible and all
      of them are allowed.
    """
    if src.dim != dst.dim or src == dst:
        return False
    if src not in partition or dst not in partition:
        return False
    if src.dim in partition.complete_pair_dims:
        return ascending_rank(partition, src) < ascending_rank(partition, dst)
    # Single-direction dimension: every I-turn is safe (corollary of Thm 2).
    return src.sign == dst.sign


def check_theorem2(partition: Partition, turns: Iterable["Turn"]) -> TheoremReport:
    """Validate a list of intra-partition U-/I-turns against Theorem 2."""
    violations: list[str] = []
    for turn in turns:
        if turn.src.dim != turn.dst.dim:
            violations.append(f"{turn} is not a U/I-turn (dimensions differ)")
        elif not uturn_allowed(partition, turn.src, turn.dst):
            violations.append(
                f"{turn} violates the ascending numbering of partition {partition}"
            )
    return TheoremReport(2, not violations, tuple(violations))


# ---------------------------------------------------------------------------
# Theorem 3
# ---------------------------------------------------------------------------

def check_theorem3(sequence: PartitionSequence) -> TheoremReport:
    """Validate the preconditions of Theorem 3 for a sequence.

    Disjointness is enforced by the :class:`PartitionSequence` constructor,
    so this re-checks it defensively and additionally confirms every
    partition individually satisfies Theorem 1 (transitions are only safe
    between *acyclic* partitions).
    """
    violations: list[str] = []
    parts = sequence.partitions
    for i, a in enumerate(parts):
        rep = check_theorem1(a)
        if not rep.ok:
            violations.extend(rep.violations)
        for b in parts[i + 1:]:
            if not a.is_disjoint_from(b):
                shared = sorted(map(str, a.channel_set & b.channel_set))
                violations.append(
                    f"partitions {a.name or '?'} and {b.name or '?'} share {shared}"
                )
    return TheoremReport(3, not violations, tuple(violations))


@dataclass(frozen=True)
class Violation:
    """One structured theorem violation with its design location.

    ``code`` identifies the failure mode independently of the message text
    (the static analyzer maps codes to stable rule IDs):

    * ``duplicate-pair`` — Theorem 1, a partition covers >1 complete D-pair;
    * ``overlap`` — Theorem 3 precondition, two partitions share a channel;
    * ``foreign-channel`` — a turn uses a channel outside the design;
    * ``non-ascending`` — Theorem 2, a U-/I-turn breaks the numbering;
    * ``backward`` — Theorem 3, an inter-partition turn flows backward.
    """

    theorem: int
    code: str
    message: str
    partition: int | None = None
    turn: "Turn | None" = None


#: Stable analyzer rule ID for each structured violation code.  The
#: static analyzer's theorem-mirror rules and the symbolic prover's
#: certificate derivations both key off this one mapping, so a new code
#: (or a re-homed one) changes every consumer at once.
VIOLATION_RULES: dict[str, str] = {
    "duplicate-pair": "EBDA001",
    "non-ascending": "EBDA002",
    "backward": "EBDA003",
    "overlap": "EBDA003",
    "foreign-channel": "EBDA004",
}


def sequence_violations(sequence: PartitionSequence) -> tuple[Violation, ...]:
    """Structured Theorem-1/disjointness violations of a sequence."""
    out: list[Violation] = []
    parts = sequence.partitions
    for i, part in enumerate(parts):
        for message in check_theorem1(part).violations:
            out.append(Violation(1, "duplicate-pair", message, partition=i))
        for b in parts[i + 1:]:
            if not part.is_disjoint_from(b):
                shared = sorted(map(str, part.channel_set & b.channel_set))
                out.append(
                    Violation(
                        3,
                        "overlap",
                        f"partitions {part.name or '?'} and {b.name or '?'}"
                        f" share {shared}",
                        partition=i,
                    )
                )
    return tuple(out)


def turn_violations(
    sequence: PartitionSequence, turns: Iterable["Turn"]
) -> tuple[Violation, ...]:
    """Structured per-turn violations against Theorems 2 and 3."""
    from repro.errors import PartitionError

    out: list[Violation] = []
    parts = sequence.partitions
    for turn in turns:
        try:
            src_idx = sequence.partition_index(turn.src)
            dst_idx = sequence.partition_index(turn.dst)
        except PartitionError:
            out.append(
                Violation(
                    3,
                    "foreign-channel",
                    f"turn {turn} uses a channel outside the design",
                    turn=turn,
                )
            )
            continue
        if src_idx == dst_idx:
            if turn.src.dim == turn.dst.dim and not uturn_allowed(
                parts[src_idx], turn.src, turn.dst
            ):
                out.append(
                    Violation(
                        2,
                        "non-ascending",
                        f"{turn} violates the ascending numbering of partition"
                        f" {parts[src_idx]}",
                        partition=src_idx,
                        turn=turn,
                    )
                )
        elif dst_idx < src_idx:
            out.append(
                Violation(
                    3,
                    "backward",
                    f"{turn} flows backward from partition {src_idx} to partition"
                    f" {dst_idx}; inter-partition transitions must ascend",
                    partition=src_idx,
                    turn=turn,
                )
            )
    return tuple(out)


def audit_turns(
    sequence: PartitionSequence, turns: Iterable["Turn"]
) -> tuple[TheoremReport, TheoremReport, TheoremReport]:
    """Audit an explicit turn list against all three theorems at once.

    Unlike :func:`check_sequence` (which trusts the turn extractor), this
    takes the *actual* turns a router would be granted — possibly mutated
    or hand-edited — and attributes every violation to its theorem:

    * Theorem 1 — some partition covers more than one complete D-pair;
    * Theorem 2 — a same-dimension turn breaks the ascending numbering;
    * Theorem 3 — partitions overlap, a turn uses a foreign channel, or an
      inter-partition turn flows backward (descending partition index).

    Returns the three reports in theorem order.  The differential fuzzer
    (:mod:`repro.fuzz`) uses this as its theorem-level oracle; the static
    analyzer (:mod:`repro.analyze`) consumes the same structured
    :func:`sequence_violations` / :func:`turn_violations` streams, so both
    verdict paths agree by construction.
    """
    found = sequence_violations(sequence) + turn_violations(sequence, turns)
    by_theorem: dict[int, list[str]] = {1: [], 2: [], 3: []}
    for v in found:
        by_theorem[v.theorem].append(v.message)
    return (
        TheoremReport(1, not by_theorem[1], tuple(by_theorem[1])),
        TheoremReport(2, not by_theorem[2], tuple(by_theorem[2])),
        TheoremReport(3, not by_theorem[3], tuple(by_theorem[3])),
    )


def check_sequence(sequence: PartitionSequence) -> TheoremReport:
    """Full EbDa compliance check for a design (Theorems 1 and 3).

    Theorem 2 is a property of the *turn extraction*, which the library
    performs by construction; this checker covers the design object itself.
    """
    return check_theorem3(sequence)


def require_sequence(sequence: PartitionSequence) -> PartitionSequence:
    """Validate a full design, returning it for chaining."""
    check_sequence(sequence).raise_if_failed()
    return sequence
