"""Arbitrary-network deadlock-freedom: the existence condition as an oracle.

Mendlovic & Matias (arXiv:2503.04583) characterize when a set of routing
paths on an *arbitrary* directed network admits deadlock-free progress:
the wait-for relation between buffered channels must be peelable — every
channel must eventually reach a state where it no longer waits on any
other channel.  Operationally this is a sink-elimination fixpoint on the
channel wait graph: repeatedly delete wires with no remaining
out-dependency (they can always drain); the routing is deadlock-free iff
the fixpoint deletes everything.  A nonempty residue ("core") is exactly
a set of wires each waiting on another core wire, i.e. it contains a
dependency cycle — so on finite graphs the condition coincides with
acyclicity of the channel dependency graph, reached by an entirely
different algorithm.

That independence is the point: :mod:`repro.cdg` answers the same
question through networkx cycle detection over a ``DiGraph``; this
module hand-rolls the relation *and* the decision procedure with no
shared code, which makes it a genuine fifth oracle for the differential
fuzzer (:mod:`repro.fuzz.oracle`).  Everything iterates in sorted order,
so verdicts are deterministic and invariant under node relabeling.

Two relation builders mirror the two CDG flavours:

* :func:`dependency_relation_from_turns` — conservative: every allowed
  class transition contributes a wait edge (any router restricted to the
  design's turns is covered);
* :func:`dependency_relation_from_routing` — the wait edges some
  destination actually realizes under a concrete routing function
  (feasible occupancies only).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.channel import Channel
from repro.core.turns import TurnSet
from repro.topology.base import Topology
from repro.topology.classes import ClassRule, no_classes
from repro.topology.wires import Wire, wires_for

if TYPE_CHECKING:
    from repro.routing.base import RoutingFunction

#: A wait-for relation: each wire maps to the wires it may wait on.
DependencyRelation = Mapping[Wire, tuple[Wire, ...]]


@dataclass(frozen=True)
class ArbitraryVerdict:
    """Outcome of the arbitrary-network existence check.

    ``safe`` is True when sink-peeling drains the whole wait graph.  When
    unsafe, ``core`` counts the surviving wires and ``cycle`` names one
    dependency cycle inside the core (canonical min-start rotation of
    ``str(wire)`` labels).
    """

    safe: bool
    wires: int
    dependencies: int
    core: int
    cycle: tuple[str, ...] = ()

    def describe(self) -> str:
        """One-line human summary."""
        if self.safe:
            return (
                f"deadlock-free routing exists: all {self.wires} wires drained "
                f"({self.dependencies} wait edges)"
            )
        return (
            f"no deadlock-free guarantee: {self.core}/{self.wires} wires stuck "
            f"in the wait core (cycle: {' -> '.join(self.cycle)})"
        )


def dependency_relation_from_turns(
    topology: Topology,
    turnset: TurnSet,
    channel_classes: Iterable[Channel] | None = None,
    rule: ClassRule = no_classes,
) -> dict[Wire, tuple[Wire, ...]]:
    """The conservative wait-for relation of an allowed-turn set.

    Wire ``a`` waits on wire ``b`` when ``b`` leaves the router ``a``
    enters and the class transition is the identity or an allowed turn —
    the same relation :func:`repro.cdg.build_turn_cdg` encodes, built
    without networkx.
    """
    classes = tuple(channel_classes) if channel_classes is not None else tuple(turnset.channels())
    wires = wires_for(topology, classes, rule)
    outgoing: dict = {}
    for wire in wires:
        outgoing.setdefault(wire.src, []).append(wire)
    relation: dict[Wire, tuple[Wire, ...]] = {}
    for a in sorted(wires):
        waits = [
            b
            for b in outgoing.get(a.dst, ())
            if a.channel == b.channel or turnset.allows(a.channel, b.channel)
        ]
        relation[a] = tuple(sorted(waits))
    return relation


def dependency_relation_from_routing(
    topology: Topology,
    routing: "RoutingFunction",
    rule: ClassRule = no_classes,
) -> dict[Wire, tuple[Wire, ...]]:
    """The wait-for relation a concrete routing function realizes.

    Per destination, only *feasible* occupancies contribute: starting
    from every injection candidate, follow the routing relation and
    record each offered next hop as a wait edge (the semantics of
    :func:`repro.cdg.build_routing_cdg`).
    """
    wires = wires_for(topology, routing.channel_classes, rule)
    wire_lookup: dict[tuple, Wire] = {(w.src, w.dst, w.channel): w for w in wires}
    waits: dict[Wire, set[Wire]] = {w: set() for w in wires}
    for dst in sorted(topology.nodes):
        frontier: list[Wire] = []
        seen: set[Wire] = set()
        for src in sorted(topology.nodes):
            if src == dst:
                continue
            for nxt, ch in routing.candidates(src, dst, None):
                a = wire_lookup.get((src, nxt, ch))
                if a is not None and a not in seen:
                    seen.add(a)
                    frontier.append(a)
        while frontier:
            a = frontier.pop()
            if a.dst == dst:
                continue
            for nxt, ch in routing.candidates(a.dst, dst, a.channel):
                b = wire_lookup.get((a.dst, nxt, ch))
                if b is None:
                    continue
                waits[a].add(b)
                if b not in seen:
                    seen.add(b)
                    frontier.append(b)
    return {w: tuple(sorted(waits[w])) for w in sorted(waits)}


def existence_verdict(relation: DependencyRelation) -> ArbitraryVerdict:
    """Decide the existence condition by sink-peeling the wait graph.

    Kahn-style elimination on the reversed relation: wires with no
    remaining out-dependency drain and are deleted; deletion may free
    their predecessors.  The fixpoint residue is the wait core — empty
    iff a deadlock-free schedule exists iff the relation is acyclic.

    >>> from repro.topology.wires import Wire
    >>> from repro.topology.base import Link
    >>> from repro.core.channel import Channel
    >>> a = Wire(Link((0,), (1,), 0, 1), Channel(0, 1))
    >>> b = Wire(Link((1,), (0,), 0, -1), Channel(0, -1))
    >>> existence_verdict({a: (b,), b: ()}).safe
    True
    >>> existence_verdict({a: (b,), b: (a,)}).safe
    False
    """
    nodes: set[Wire] = set(relation)
    for out in relation.values():
        nodes.update(out)
    succs: dict[Wire, tuple[Wire, ...]] = {
        w: tuple(sorted(set(relation.get(w, ())))) for w in nodes
    }
    out_deg = {w: len(succs[w]) for w in nodes}
    preds: dict[Wire, list[Wire]] = {w: [] for w in nodes}
    for w in sorted(nodes):
        for s in succs[w]:
            preds[s].append(w)
    queue: deque[Wire] = deque(sorted(w for w in nodes if out_deg[w] == 0))
    removed: set[Wire] = set()
    while queue:
        w = queue.popleft()
        removed.add(w)
        for p in preds[w]:
            out_deg[p] -= 1
            if out_deg[p] == 0:
                queue.append(p)
    core = nodes - removed
    n_edges = sum(len(s) for s in succs.values())
    if not core:
        return ArbitraryVerdict(True, len(nodes), n_edges, 0)
    return ArbitraryVerdict(
        False, len(nodes), n_edges, len(core), _witness_cycle(core, succs)
    )


def _witness_cycle(core: set[Wire], succs: Mapping[Wire, tuple[Wire, ...]]) -> tuple[str, ...]:
    """One dependency cycle inside the wait core, canonically rotated.

    Every core wire has at least one successor in the core (that is what
    kept it from draining), so walking min-successors must revisit a
    wire; the revisit closes the cycle.
    """
    start = min(core)
    path = [start]
    index = {start: 0}
    cur = start
    while True:
        cur = min(s for s in succs[cur] if s in core)
        if cur in index:
            cycle = path[index[cur]:]
            break
        index[cur] = len(path)
        path.append(cur)
    pivot = cycle.index(min(cycle))
    cycle = cycle[pivot:] + cycle[:pivot]
    return tuple(str(w) for w in cycle)


def verdict_from_turns(
    topology: Topology,
    turnset: TurnSet,
    channel_classes: Iterable[Channel] | None = None,
    rule: ClassRule = no_classes,
) -> ArbitraryVerdict:
    """Existence verdict for the conservative turn relation."""
    return existence_verdict(
        dependency_relation_from_turns(topology, turnset, channel_classes, rule)
    )


def verdict_from_routing(
    topology: Topology,
    routing: "RoutingFunction",
    rule: ClassRule = no_classes,
) -> ArbitraryVerdict:
    """Existence verdict for a concrete routing function's relation."""
    return existence_verdict(dependency_relation_from_routing(topology, routing, rule))
