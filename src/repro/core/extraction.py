"""Turn extraction from a partition sequence — the Figure 8 engine.

Given a validated :class:`~repro.core.sequence.PartitionSequence`, this
module computes the full set of allowed turns exactly as the paper does in
Figure 8:

* **Theorem 1** contributes, inside each partition, every ordered pair of
  channels in *different* dimensions (90-degree turns);
* **Theorem 2** contributes, inside each partition, U-/I-turns between
  same-dimension channels taken in ascending numbering order (for the
  dimension holding the complete pair) and all I-turns in single-direction
  dimensions;
* **Theorem 3** contributes every ordered pair from an earlier partition to
  a later one (90-degree, U- and I-turns alike).

The result is a :class:`~repro.core.turns.TurnSet` whose provenance map
reproduces the figure's layout.
"""

from __future__ import annotations


from repro.core.channel import Channel
from repro.core.partition import Partition
from repro.core.sequence import PartitionSequence
from repro.core.theorems import require_sequence, uturn_allowed
from repro.core.turns import Turn, TurnKind, TurnSet


def theorem1_turns(partition: Partition) -> tuple[Turn, ...]:
    """All 90-degree turns available inside one partition.

    >>> [str(t) for t in theorem1_turns(Partition.of("X+ Y-"))]
    ['X+->Y-', 'Y-->X+']
    """
    out: list[Turn] = []
    for src in partition:
        for dst in partition:
            if src.dim != dst.dim:
                out.append(Turn(src, dst))
    return tuple(out)


def theorem2_turns(partition: Partition) -> tuple[Turn, ...]:
    """All U-/I-turns permitted inside one partition by Theorem 2."""
    out: list[Turn] = []
    for src in partition:
        for dst in partition:
            if src is not dst and uturn_allowed(partition, src, dst):
                out.append(Turn(src, dst))
    return tuple(out)


def theorem3_turns(earlier: Partition, later: Partition) -> tuple[Turn, ...]:
    """All transitions from an earlier partition into a later one."""
    return tuple(Turn(src, dst) for src in earlier for dst in later)


def extract_turns(
    sequence: PartitionSequence,
    *,
    transitions: str = "all",
    validate: bool = True,
) -> TurnSet:
    """Compile a partition sequence into its full allowed-turn set.

    Parameters
    ----------
    sequence:
        The EbDa design.  Validated against Theorems 1 and 3 unless
        ``validate=False``.
    transitions:
        ``"all"`` allows transitions from every partition to every later
        one (corollary of Theorem 3); ``"consecutive"`` restricts to
        adjacent partitions only (a designer may prefer this to shrink the
        turn table; it is strictly safe since it is a subset).

    Returns
    -------
    TurnSet
        Provenance labels follow Figure 8: ``"Theorem1 in PA"``,
        ``"Theorem2 in PA"``, ``"Theorem3 PA->PB"``.
    """
    if validate:
        require_sequence(sequence)
    if transitions not in ("all", "consecutive"):
        raise ValueError(f"transitions must be 'all' or 'consecutive', got {transitions!r}")

    rules: dict[str, tuple[Turn, ...]] = {}
    parts = sequence.partitions
    for part in parts:
        label = part.name or "?"
        rules[f"Theorem1 in {label}"] = theorem1_turns(part)
        rules[f"Theorem2 in {label}"] = theorem2_turns(part)
    for i, earlier in enumerate(parts):
        laters = parts[i + 1: i + 2] if transitions == "consecutive" else parts[i + 1:]
        for later in laters:
            rules[f"Theorem3 {earlier.name or '?'}->{later.name or '?'}"] = theorem3_turns(
                earlier, later
            )
    return TurnSet(rules)


def degree90_turns(
    sequence: PartitionSequence,
    *,
    transitions: str = "all",
    validate: bool = True,
) -> tuple[Turn, ...]:
    """Only the 90-degree turns of the compiled design (Tables 4-5 style)."""
    turnset = extract_turns(sequence, transitions=transitions, validate=validate)
    return turnset.of_kind(TurnKind.DEGREE90)


def allowed_turn_pairs(
    sequence: PartitionSequence,
    *,
    transitions: str = "all",
    validate: bool = True,
) -> frozenset[tuple[Channel, Channel]]:
    """The design's turns as (src, dst) channel pairs, for set comparisons."""
    turnset = extract_turns(sequence, transitions=transitions, validate=validate)
    return frozenset((t.src, t.dst) for t in turnset.turns)


def injection_channels(sequence: PartitionSequence) -> tuple[Channel, ...]:
    """Channels a freshly injected packet may take (all of them).

    Injection has no previous channel, so no turn restriction applies; the
    sequence's full channel inventory is available at the source router.
    """
    return sequence.all_channels
