"""EbDa designs for k-ary n-cubes: the dateline scheme as partitions.

The paper's Theorem 2 notes that a torus wrap-around channel "can be seen
as two unidirectional channels and two U-turns".  The classical dateline
scheme falls out of EbDa naturally with spatial classes: tag wrap links
``w`` and regular links ``r`` (:func:`repro.topology.classes.dateline`),
give every dimension two VCs, and order the partitions so a ring is
traversed

    VC1 on regular links  ->  VC2 on the wrap link  ->  VC2 on regular links

Crossing the dateline is then the only legal VC switch, and the switch is
one-way — exactly a consecutive-order transition between disjoint
partitions (Theorem 3), so the conservative CDG is acyclic even though
every ring is a physical cycle.
"""

from __future__ import annotations

from repro.core.channel import NEG, POS, Channel
from repro.core.partition import Partition
from repro.core.sequence import PartitionSequence
from repro.core.theorems import require_sequence
from repro.errors import PartitionError


def dateline_design(n_dims: int, *, dimension_order: bool = True) -> PartitionSequence:
    """The dateline EbDa design for an ``n_dims``-dimensional torus.

    Per dimension (in ascending order) three partitions are emitted:

    * ``[D1+@r  D1-@r]`` — VC1 on regular links (before the dateline);
    * ``[D2+@w  D2-@w]`` — VC2 on the wrap links (crossing);
    * ``[D2+@r  D2-@r]`` — VC2 on regular links (after the dateline).

    ``dimension_order=True`` keeps the per-dimension blocks consecutive,
    which additionally enforces XY(Z...) ordering between dimensions — the
    deterministic, fully verified arrangement.  Uses 2 VCs per dimension.

    >>> dateline_design(1).arrow_notation()
    'X+@r X-@r -> X2+@w X2-@w -> X2+@r X2-@r'
    """
    if n_dims < 1:
        raise PartitionError("need at least one dimension")
    parts: list[Partition] = []
    for dim in range(n_dims):
        pre = Partition(
            (Channel(dim, POS, 1, "r"), Channel(dim, NEG, 1, "r")),
            name=f"P{dim}pre",
        )
        wrap = Partition(
            (Channel(dim, POS, 2, "w"), Channel(dim, NEG, 2, "w")),
            name=f"P{dim}wrap",
        )
        post = Partition(
            (Channel(dim, POS, 2, "r"), Channel(dim, NEG, 2, "r")),
            name=f"P{dim}post",
        )
        parts.extend([pre, wrap, post])
    if not dimension_order:
        raise PartitionError(
            "only the dimension-ordered dateline arrangement is provided;"
            " adaptive torus designs need per-quadrant escape analysis"
        )
    return require_sequence(PartitionSequence(tuple(parts)))


def ring_channels(dim: int = 0) -> tuple[Channel, ...]:
    """The six channel classes one torus dimension uses under the scheme."""
    return (
        Channel(dim, POS, 1, "r"),
        Channel(dim, NEG, 1, "r"),
        Channel(dim, POS, 2, "w"),
        Channel(dim, NEG, 2, "w"),
        Channel(dim, POS, 2, "r"),
        Channel(dim, NEG, 2, "r"),
    )
