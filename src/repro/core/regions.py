"""The 2^n region model of Section 4.

A dimension splits the geometric space in two; an n-dimensional network has
``2^n`` regions (quadrants/octants...).  A region is identified by a sign
vector: ``(+1, +1)`` is the paper's *NE* region of a 2D network, ``(+1, -1,
+1)`` is *SEU* in 3D (the paper orders letters E/W, N/S, U/D by dimension).

A partition *covers* a region when, for every dimension, it holds a channel
pointing in that region's direction — i.e. a packet whose destination lies
in that region relative to the source can make all its remaining moves
inside the partition (which is what "fully adaptive in that region" means).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from itertools import product

from repro.core.channel import NEG, POS
from repro.core.partition import Partition
from repro.core.sequence import PartitionSequence

#: Compass letters per (dimension, sign), matching the paper's figures.
_REGION_LETTERS = {
    (0, POS): "E", (0, NEG): "W",
    (1, POS): "N", (1, NEG): "S",
    (2, POS): "U", (2, NEG): "D",
}

Region = tuple[int, ...]


def all_regions(n: int) -> tuple[Region, ...]:
    """Every sign vector of length ``n`` — the 2^n regions of Section 4.

    >>> len(all_regions(3))
    8
    """
    if n < 1:
        raise ValueError("need at least one dimension")
    return tuple(product((POS, NEG), repeat=n))


def region_name(region: Region) -> str:
    """Paper-style compass name, e.g. ``(+1,+1,-1)`` -> ``'NED'``.

    Letters are emitted in the paper's display order: N/S first, then E/W,
    then U/D (the paper writes *NEU*, *SWD*...).
    """
    order = [1, 0, 2]  # Y letter first, then X, then Z — as in 'NEU'
    parts: list[str] = []
    for dim in order:
        if dim < len(region):
            parts.append(_REGION_LETTERS[(dim, region[dim])])
    for dim in range(3, len(region)):
        parts.append(f"D{dim + 1}{'+' if region[dim] == POS else '-'}")
    return "".join(parts)


def regions_covered(partition: Partition, n: int) -> tuple[Region, ...]:
    """Regions in which ``partition`` provides full adaptivity.

    A region is covered when the partition holds, for each dimension, at
    least one channel with that region's sign.

    >>> regions_covered(Partition.of("X+ Y+ Y-"), 2)
    ((1, 1), (1, -1))
    """
    signs_by_dim: dict[int, set[int]] = {d: set() for d in range(n)}
    for ch in partition:
        if ch.dim < n:
            signs_by_dim[ch.dim].add(ch.sign)
    return tuple(
        region
        for region in all_regions(n)
        if all(region[d] in signs_by_dim[d] for d in range(n))
    )


def covers_all_regions(sequence: PartitionSequence | Iterable[Partition], n: int) -> bool:
    """Does some partition cover each of the 2^n regions?

    This is the paper's structural criterion for a *fully adaptive* design:
    within one partition all channels can be taken in any order, so a
    region covered by a single partition enjoys every minimal path.
    """
    parts = sequence.partitions if isinstance(sequence, PartitionSequence) else tuple(sequence)
    covered: set[Region] = set()
    for part in parts:
        covered.update(regions_covered(part, n))
    return covered == set(all_regions(n))


def uncovered_regions(sequence: PartitionSequence, n: int) -> tuple[Region, ...]:
    """Regions no single partition covers (deterministic/partial there)."""
    covered: set[Region] = set()
    for part in sequence:
        covered.update(regions_covered(part, n))
    return tuple(r for r in all_regions(n) if r not in covered)


def region_of(src: Sequence[int], dst: Sequence[int]) -> Region:
    """The region ``dst`` lies in relative to ``src`` (ties broken positive).

    Dimensions where the coordinates agree contribute ``+1`` — a packet
    that never needs to move along a dimension is unaffected by its sign.
    """
    if len(src) != len(dst):
        raise ValueError("coordinate arity mismatch")
    return tuple(POS if d >= s else NEG for s, d in zip(src, dst))
