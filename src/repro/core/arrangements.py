"""Set arrangements (Section 5.1).

The partitioning procedure (Algorithm 1) consumes an ordered list of
*dimension sets*: one set per dimension, holding that dimension's channels
in D-pair order.  This module builds the sets from a VC budget and
implements the three arrangements:

* **Arrangement 1** — order sets by the number of D-pairs they cover
  (descending); this is the default input to Algorithm 1.
* **Arrangement 2** — when several sets tie with Set1, any of them may
  lead; :func:`arrangement2` enumerates the alternatives.
* **Arrangement 3** — VCs inside Set1 can be re-paired (``Y1+ Y2-`` is as
  good a pair as ``Y1+ Y1-``), giving ``q!`` pairings;
  :func:`arrangement3` enumerates them.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, replace
from itertools import permutations

from repro.core.channel import NEG, POS, Channel, dim_name
from repro.errors import PartitionError


@dataclass(frozen=True)
class DimensionSet:
    """One dimension's channels, ordered for pairwise consumption.

    The canonical layout interleaves directions so that consecutive
    elements form D-pairs, exactly as the paper writes them:
    ``{Y1+ Y1- Y2+ Y2- ...}``.
    """

    dim: int
    channels: tuple[Channel, ...]

    def __post_init__(self) -> None:
        for ch in self.channels:
            if ch.dim != self.dim:
                raise PartitionError(
                    f"channel {ch} does not belong to dimension {dim_name(self.dim)}"
                )
        if len(set(self.channels)) != len(self.channels):
            raise PartitionError(f"duplicate channels in set for {dim_name(self.dim)}")

    def __str__(self) -> str:
        return f"D_{dim_name(self.dim)} = {{{' '.join(map(str, self.channels))}}}"

    def __len__(self) -> int:
        return len(self.channels)

    @property
    def pair_count(self) -> int:
        """Number of complete D-pairs this set can still form.

        With ``p`` positive and ``m`` negative channels remaining, at most
        ``min(p, m)`` pairs exist (signs pair regardless of VC number).
        """
        pos = sum(1 for ch in self.channels if ch.sign == POS)
        return min(pos, len(self.channels) - pos)

    @property
    def is_empty(self) -> bool:
        return not self.channels

    def head(self) -> Channel:
        """The first remaining channel."""
        if not self.channels:
            raise PartitionError(f"dimension set {dim_name(self.dim)} is empty")
        return self.channels[0]

    def head_pair(self) -> tuple[Channel, Channel]:
        """The first available D-pair: first positive + first negative channel."""
        pos = next((c for c in self.channels if c.sign == POS), None)
        neg = next((c for c in self.channels if c.sign == NEG), None)
        if pos is None or neg is None:
            raise PartitionError(
                f"dimension set {dim_name(self.dim)} has no complete pair left"
            )
        return pos, neg

    def first_with_sign(self, sign: int) -> Channel | None:
        """First remaining channel with the requested direction, if any."""
        return next((c for c in self.channels if c.sign == sign), None)

    def without(self, taken: Iterable[Channel]) -> "DimensionSet":
        """A copy with ``taken`` channels removed, order preserved."""
        drop = set(taken)
        return replace(self, channels=tuple(c for c in self.channels if c not in drop))

    def rotated_channels(self, k: int) -> "DimensionSet":
        """Channel-wise left circular shift by ``k`` (Algorithm 2 line 6/9)."""
        if not self.channels:
            return self
        k %= len(self.channels)
        return replace(self, channels=self.channels[k:] + self.channels[:k])

    def rotated_pairs(self, k: int) -> "DimensionSet":
        """Pair-wise left circular shift by ``k`` pairs (Algorithm 2 line 11)."""
        if len(self.channels) % 2 != 0:
            # odd count: fall back to channel rotation by 2k
            return self.rotated_channels(2 * k)
        pairs = [self.channels[i: i + 2] for i in range(0, len(self.channels), 2)]
        k %= max(len(pairs), 1)
        rotated = pairs[k:] + pairs[:k]
        return replace(self, channels=tuple(ch for pair in rotated for ch in pair))


def sets_from_vc_counts(vc_counts: Sequence[int] | Mapping[int, int]) -> list[DimensionSet]:
    """Build one :class:`DimensionSet` per dimension from a VC budget.

    ``vc_counts[d]`` is the number of virtual channels along dimension
    ``d``; each VC contributes one positive and one negative channel, laid
    out pairwise: ``X1+ X1- X2+ X2- ...``.

    >>> [str(s) for s in sets_from_vc_counts([1, 2])]
    ['D_X = {X+ X-}', 'D_Y = {Y+ Y- Y2+ Y2-}']
    """
    if isinstance(vc_counts, Mapping):
        items = sorted(vc_counts.items())
    else:
        items = list(enumerate(vc_counts))
    sets: list[DimensionSet] = []
    for dim, count in items:
        if count < 1:
            raise PartitionError(f"dimension {dim_name(dim)} needs at least 1 VC, got {count}")
        chans: list[Channel] = []
        for vc in range(1, count + 1):
            chans.append(Channel(dim, POS, vc))
            chans.append(Channel(dim, NEG, vc))
        sets.append(DimensionSet(dim, tuple(chans)))
    return sets


def arrangement1(sets: Iterable[DimensionSet]) -> list[DimensionSet]:
    """Order sets by descending pair count (stable) — Arrangement 1.

    >>> s = sets_from_vc_counts([3, 2, 3])
    >>> [x.dim for x in arrangement1(s)]
    [0, 2, 1]
    """
    return sorted(sets, key=lambda s: -s.pair_count)


def arrangement2(sets: Iterable[DimensionSet]) -> Iterator[list[DimensionSet]]:
    """Enumerate orderings allowed by Arrangement 2.

    All sets tied with the largest pair count may be permuted amongst the
    leading positions; the rest keep their Arrangement-1 order.
    """
    ordered = arrangement1(sets)
    if not ordered:
        yield []
        return
    top = ordered[0].pair_count
    leaders = [s for s in ordered if s.pair_count == top]
    rest = [s for s in ordered if s.pair_count != top]
    seen: set[tuple[int, ...]] = set()
    for perm in permutations(leaders):
        key = tuple(s.dim for s in perm)
        if key in seen:
            continue
        seen.add(key)
        yield list(perm) + rest


def repaired_set(dimset: DimensionSet, pairing: Sequence[int]) -> DimensionSet:
    """Re-pair the VCs of a set: positive VC ``i`` pairs with negative VC ``pairing[i]``.

    ``pairing`` is a permutation of VC indices (0-based into the set's
    negative channels).  This realises Arrangement 3's ``q!`` options.

    >>> s = sets_from_vc_counts([2])[0]
    >>> str(repaired_set(s, [1, 0]))
    'D_X = {X+ X2- X2+ X-}'
    """
    pos = [c for c in dimset.channels if c.sign == POS]
    neg = [c for c in dimset.channels if c.sign == NEG]
    if len(pos) != len(neg) or sorted(pairing) != list(range(len(neg))):
        raise PartitionError("pairing must be a permutation over the set's VC count")
    out: list[Channel] = []
    for i, p in enumerate(pos):
        out.append(p)
        out.append(neg[pairing[i]])
    return replace(dimset, channels=tuple(out))


def arrangement3(dimset: DimensionSet) -> Iterator[DimensionSet]:
    """Enumerate all ``q!`` re-pairings of one dimension set (Arrangement 3)."""
    q = len(dimset.channels) // 2
    for pairing in permutations(range(q)):
        yield repaired_set(dimset, pairing)
