"""Algorithm 2 — deriving alternative partitioning options (Section 5.3).

Three derivation levers are provided:

* :func:`derive_by_rotation` — Algorithm 2 proper: circularly shift Set1
  pairwise and every other set channel-wise, running Algorithm 1 on each
  rotation combination;
* :func:`split_partitions` — §5.3.2: increase the number of partitions
  (down to fully deterministic one-channel partitions);
* :func:`trace_orders` — §5.3.3: trace the same partitions in different
  consecutive orders.

All generators yield *validated* :class:`PartitionSequence` objects and
de-duplicate structurally identical outcomes.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from itertools import permutations, product

from repro.core.arrangements import DimensionSet
from repro.core.partition import Partition
from repro.core.partitioning import Selector, head_selector, partition_sets
from repro.core.sequence import PartitionSequence
from repro.core.theorems import check_sequence


def _sequence_key(seq: PartitionSequence) -> tuple:
    """Structural identity: ordered tuple of channel frozensets."""
    return tuple(p.channel_set for p in seq)


def derive_by_rotation(
    sets: Sequence[DimensionSet],
    *,
    selector: Selector = head_selector,
    merge: bool = True,
    limit: int | None = None,
) -> Iterator[PartitionSequence]:
    """Enumerate Algorithm-2 rotations of the arranged sets.

    Set1 is rotated pair-wise (``q`` positions); every other set is rotated
    channel-wise (its length in positions), and Algorithm 1 runs on each
    combination.  Structurally duplicate results are suppressed.

    >>> from repro.core.arrangements import sets_from_vc_counts, arrangement1
    >>> opts = list(derive_by_rotation(arrangement1(sets_from_vc_counts([1, 1]))))
    >>> len(opts) >= 2
    True
    """
    sets = list(sets)
    if not sets:
        return
    lead_rot = max(len(sets[0].channels) // 2, 1)
    other_rots = [max(len(s.channels), 1) for s in sets[1:]]
    seen: set[tuple] = set()
    count = 0
    for shifts in product(range(lead_rot), *[range(r) for r in other_rots]):
        rotated = [sets[0].rotated_pairs(shifts[0])]
        rotated += [s.rotated_channels(k) for s, k in zip(sets[1:], shifts[1:])]
        seq = partition_sets(rotated, selector=selector, merge=merge, reorder=True)
        key = _sequence_key(seq)
        if key in seen:
            continue
        seen.add(key)
        yield seq
        count += 1
        if limit is not None and count >= limit:
            return


def split_partitions(sequence: PartitionSequence) -> Iterator[PartitionSequence]:
    """§5.3.2 — derive less-adaptive designs by splitting partitions.

    Each yield splits one multi-channel partition into two consecutive
    pieces (every proper prefix split), preserving channel order so the
    Theorem-2 numbering survives.  Applying repeatedly converges to a fully
    deterministic design (all partitions of size one).
    """
    parts = sequence.partitions
    for idx, part in enumerate(parts):
        if len(part) < 2:
            continue
        for cut in range(1, len(part)):
            head = Partition(part.channels[:cut], name=f"{part.name}a" if part.name else "")
            tail = Partition(part.channels[cut:], name=f"{part.name}b" if part.name else "")
            candidate = PartitionSequence(parts[:idx] + (head, tail) + parts[idx + 1:])
            if check_sequence(candidate).ok:
                yield candidate


def fully_deterministic(sequence: PartitionSequence) -> PartitionSequence:
    """Split every partition down to single channels (§5.3.2 end point).

    The resulting design admits exactly one legal channel order — a
    deterministic routing algorithm such as XY.
    """
    singles = [
        Partition((ch,), name=f"P{i}")
        for i, ch in enumerate(sequence.all_channels)
    ]
    return PartitionSequence(tuple(singles))


def trace_orders(
    sequence: PartitionSequence, *, limit: int | None = None
) -> Iterator[PartitionSequence]:
    """§5.3.3 — the same partitions traced in every consecutive order.

    All ``k!`` orders of the ``k`` partitions are valid EbDa designs (the
    theorems only need *some* fixed ascending order); each yields a
    different turn set.  The original order is yielded first.
    """
    parts = sequence.partitions
    emitted = 0
    for perm in permutations(range(len(parts))):
        candidate = PartitionSequence(tuple(parts[i] for i in perm))
        yield candidate
        emitted += 1
        if limit is not None and emitted >= limit:
            return


def derivation_space_size(sets: Sequence[DimensionSet]) -> int:
    """Number of rotation combinations Algorithm 2 explores (before dedup)."""
    if not sets:
        return 0
    size = max(len(sets[0].channels) // 2, 1)
    for s in sets[1:]:
        size *= max(len(s.channels), 1)
    return size
