"""Turns: ordered transitions between two channels.

The paper distinguishes (Definitions 4-5 and Section 3):

* **90-degree turns** — the two channels lie in different dimensions;
* **I-turns** (0-degree) — same dimension, same direction (different VC or
  spatial class);
* **U-turns** (180-degree) — same dimension, opposite directions.

A :class:`TurnSet` is the compiled artifact of an EbDa design: the complete
set of channel-class transitions a router may grant.  Because the set is
derived from an ordered partition sequence, membership is a *local*
legality test — a packet whose previous hop used channel class ``a`` may be
forwarded on channel class ``b`` iff ``(a, b)`` is in the set.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass
from enum import Enum

from repro.core.channel import Channel


class TurnKind(str, Enum):
    """Geometric classification of a turn."""

    DEGREE90 = "90-degree"
    UTURN = "U-turn"
    ITURN = "I-turn"


@dataclass(frozen=True, order=True)
class Turn:
    """An ordered transition from channel class ``src`` to ``dst``."""

    src: Channel
    dst: Channel

    @property
    def kind(self) -> TurnKind:
        """90-degree, U-turn or I-turn, per Definitions 4 and 5."""
        if self.src.dim != self.dst.dim:
            return TurnKind.DEGREE90
        if self.src.sign == self.dst.sign:
            return TurnKind.ITURN
        return TurnKind.UTURN

    def __str__(self) -> str:
        return f"{self.src}->{self.dst}"

    def __repr__(self) -> str:
        return f"Turn({self})"

    @property
    def reverse(self) -> "Turn":
        """The opposite transition ``dst -> src``."""
        return Turn(self.dst, self.src)

    @classmethod
    def parse(cls, text: str) -> "Turn":
        """Parse ``"X+->Y-"`` notation.

        >>> Turn.parse("X+->Y-").kind
        <TurnKind.DEGREE90: '90-degree'>
        """
        src, _, dst = text.partition("->")
        return cls(Channel.parse(src), Channel.parse(dst))


def turn(src: str | Channel, dst: str | Channel) -> Turn:
    """Convenience constructor accepting channel notation strings."""
    if isinstance(src, str):
        src = Channel.parse(src)
    if isinstance(dst, str):
        dst = Channel.parse(dst)
    return Turn(src, dst)


class TurnSet:
    """An immutable collection of allowed turns with provenance.

    ``rules`` maps a provenance label (e.g. ``"Theorem1 in PA"`` or
    ``"Theorem3 PA->PB"``) to the turns contributed by that rule, mirroring
    the layout of Figure 8 in the paper.
    """

    __slots__ = ("_rules", "_flat", "_pairs")

    def __init__(self, rules: Mapping[str, Iterable[Turn]]) -> None:
        self._rules: dict[str, tuple[Turn, ...]] = {
            label: tuple(turns) for label, turns in rules.items()
        }
        flat: set[Turn] = set()
        for turns in self._rules.values():
            flat.update(turns)
        self._flat = frozenset(flat)
        self._pairs = frozenset((t.src, t.dst) for t in flat)

    # -- container protocol -------------------------------------------------

    def __iter__(self) -> Iterator[Turn]:
        return iter(sorted(self._flat))

    def __len__(self) -> int:
        return len(self._flat)

    def __contains__(self, item: Turn | tuple[Channel, Channel]) -> bool:
        if isinstance(item, Turn):
            return item in self._flat
        return tuple(item) in self._pairs

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TurnSet):
            return NotImplemented
        return self._flat == other._flat

    def __hash__(self) -> int:
        return hash(self._flat)

    def __repr__(self) -> str:
        return f"TurnSet({len(self._flat)} turns, {len(self._rules)} rules)"

    # -- queries -------------------------------------------------------------

    def allows(self, src: Channel, dst: Channel) -> bool:
        """Local legality test: may a packet move from class ``src`` to ``dst``?"""
        return (src, dst) in self._pairs

    @property
    def turns(self) -> frozenset[Turn]:
        """All allowed turns, flattened."""
        return self._flat

    @property
    def rules(self) -> dict[str, tuple[Turn, ...]]:
        """Provenance-labelled turn groups (a copy)."""
        return dict(self._rules)

    def of_kind(self, kind: TurnKind) -> tuple[Turn, ...]:
        """All turns of one geometric kind, sorted."""
        return tuple(sorted(t for t in self._flat if t.kind == kind))

    def count_by_kind(self) -> dict[TurnKind, int]:
        """Number of allowed turns per kind — the accounting used in §6."""
        counts = {kind: 0 for kind in TurnKind}
        for t in self._flat:
            counts[t.kind] += 1
        return counts

    def channels(self) -> frozenset[Channel]:
        """Every channel class that appears in some turn."""
        out: set[Channel] = set()
        for t in self._flat:
            out.add(t.src)
            out.add(t.dst)
        return frozenset(out)

    def restrict(self, predicate) -> "TurnSet":
        """A new TurnSet keeping only turns for which ``predicate(turn)`` holds."""
        return TurnSet(
            {
                label: [t for t in turns if predicate(t)]
                for label, turns in self._rules.items()
            }
        )

    def merged_with(self, other: "TurnSet") -> "TurnSet":
        """Union of two turn sets, keeping both provenance maps."""
        rules = dict(self._rules)
        for label, turns in other._rules.items():
            rules[label] = tuple(rules.get(label, ())) + tuple(turns)
        return TurnSet(rules)

    def describe(self) -> str:
        """Multi-line report in the style of Figure 8."""
        lines: list[str] = []
        for label, turns in self._rules.items():
            if not turns:
                continue
            by_kind: dict[TurnKind, list[Turn]] = {k: [] for k in TurnKind}
            for t in turns:
                by_kind[t.kind].append(t)
            segs = []
            if by_kind[TurnKind.DEGREE90]:
                segs.append("Turns: " + ", ".join(map(str, sorted(by_kind[TurnKind.DEGREE90]))))
            if by_kind[TurnKind.UTURN]:
                segs.append("U-Turns: " + ", ".join(map(str, sorted(by_kind[TurnKind.UTURN]))))
            if by_kind[TurnKind.ITURN]:
                segs.append("I-Turns: " + ", ".join(map(str, sorted(by_kind[TurnKind.ITURN]))))
            lines.append(f"{label}: {{" + "; ".join(segs) + "}")
        return "\n".join(lines)


def turnset_from_strings(specs: Iterable[str], label: str = "explicit") -> TurnSet:
    """Build a TurnSet from ``"X+->Y-"`` strings under a single label."""
    return TurnSet({label: [Turn.parse(s) for s in specs]})
