"""The exceptional no-VC case (Section 5.2.2).

When no virtual channels are available, channels can be divided into two
partitions neither of which holds a complete pair: one channel per
dimension goes to PA and the opposite channels to PB.  Exchanging channels
between the two partitions enumerates ``2^n`` sign assignments, and each
assignment can be traced PA->PB or PB->PA, giving the paper's "eight
partitioning options in total" for 3D (2^3 assignments; the paper lists
four and obtains the other four by switching PAs and PBs).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from itertools import product

from repro.core.channel import NEG, POS, Channel
from repro.core.partition import Partition
from repro.core.sequence import PartitionSequence
from repro.errors import PartitionError


def two_partition_options(n_dims: int, *, include_reversed: bool = False) -> Iterator[PartitionSequence]:
    """Enumerate the §5.2.2 no-VC two-partition designs for ``n_dims``.

    Each design is ``PA -> PB`` where PA holds one channel per dimension
    (one sign choice per dimension) and PB holds the opposite channels.
    ``include_reversed`` additionally yields each PB -> PA order, doubling
    the count (the paper's "the remaining four ... obtained by switching
    from PBs to PAs" — note sign-complement assignments already produce
    reversed-channel designs, so the reversed traces coincide with other
    assignments' forward traces as *turn sets* but are distinct objects).

    >>> sum(1 for _ in two_partition_options(3))
    8
    """
    if n_dims < 1:
        raise PartitionError("need at least one dimension")
    for signs in product((POS, NEG), repeat=n_dims):
        pa = Partition(tuple(Channel(d, signs[d]) for d in range(n_dims)), name="PA")
        pb = Partition(tuple(Channel(d, -signs[d]) for d in range(n_dims)), name="PB")
        yield PartitionSequence((pa, pb))
        if include_reversed:
            yield PartitionSequence((pb.renamed("PA"), pa.renamed("PB")))


def option_for_signs(signs: Sequence[int]) -> PartitionSequence:
    """The single §5.2.2 design for an explicit sign vector.

    >>> option_for_signs([+1, +1]).arrow_notation()
    'X+ Y+ -> X- Y-'
    """
    pa = Partition(tuple(Channel(d, s) for d, s in enumerate(signs)), name="PA")
    pb = Partition(tuple(Channel(d, -s) for d, s in enumerate(signs)), name="PB")
    return PartitionSequence((pa, pb))


def negative_first(n_dims: int) -> PartitionSequence:
    """The negative-first design: all negative channels, then all positive.

    In 2D this is the paper's P4 (Figure 6(d)).

    >>> negative_first(2).arrow_notation()
    'X- Y- -> X+ Y+'
    """
    return option_for_signs([NEG] * n_dims).validate()


def positive_first(n_dims: int) -> PartitionSequence:
    """The mirror design: all positive channels first."""
    return option_for_signs([POS] * n_dims).validate()
