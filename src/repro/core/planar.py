"""Planar-adaptive routing (Chien & Kim [2]) as an EbDa design.

Planar-adaptive routing restricts adaptivity to a sequence of 2D planes:
plane ``A_i`` spans dimensions ``(i, i+1)`` and packets resolve their
offsets plane by plane.  Dimensions interior to the sequence participate
in two planes and carry two VCs; the first and last dimensions need one.
Total channels: ``4n - 4`` — far below the ``(n+1) * 2^(n-1)`` of full
adaptivity, the scheme's selling point.

The EbDa rendering: each plane is a 2D *negative-first* sub-design (two
pair-free partitions — Table 1's third family), and the planes are traced
in ascending order.  Every partition is Theorem-1 trivial (no complete
pair), all are disjoint (interior dimensions split by VC), so Theorems
1+3 give deadlock freedom directly — no plane-by-plane case analysis.
"""

from __future__ import annotations

from repro.core.channel import NEG, POS, Channel
from repro.core.partition import Partition
from repro.core.sequence import PartitionSequence
from repro.core.theorems import require_sequence
from repro.errors import PartitionError


def _plane_channel(dim: int, sign: int, plane: int) -> Channel:
    """The channel dimension ``dim`` contributes to ``plane``.

    An interior dimension ``d`` serves as the *second* dimension of plane
    ``d-1`` on VC 1 and as the *first* dimension of plane ``d`` on VC 2.
    """
    vc = 2 if dim == plane and plane > 0 else 1
    return Channel(dim, sign, vc)


def planar_adaptive_design(n: int) -> PartitionSequence:
    """The planar-adaptive design for an ``n``-dimensional mesh (n >= 2).

    >>> planar_adaptive_design(3).arrow_notation()
    'X- Y- -> X+ Y+ -> Y2- Z- -> Y2+ Z+'
    """
    if n < 2:
        raise PartitionError("planar-adaptive routing needs at least 2 dimensions")
    parts: list[Partition] = []
    for plane in range(n - 1):
        lo = _plane_channel(plane, NEG, plane), _plane_channel(plane + 1, NEG, plane)
        hi = _plane_channel(plane, POS, plane), _plane_channel(plane + 1, POS, plane)
        parts.append(Partition(lo, name=f"A{plane}-neg"))
        parts.append(Partition(hi, name=f"A{plane}-pos"))
    return require_sequence(PartitionSequence(tuple(parts)))


def planar_channel_count(n: int) -> int:
    """Channels the planar-adaptive design uses: ``4n - 4``.

    >>> [planar_channel_count(n) for n in (2, 3, 4)]
    [4, 8, 12]
    """
    if n < 2:
        raise PartitionError("planar-adaptive routing needs at least 2 dimensions")
    return 4 * n - 4
