"""Channel model: dimensions, directions, virtual channels and spatial classes.

This module implements Definitions 1 and 5 of the paper.  A *channel* is one
direction of one dimension, optionally qualified by a virtual-channel index
and a *spatial class*.  Examples in the paper's notation:

``X+``
    the positive direction of dimension X (VC 1 implicitly),
``X2-``
    VC number 2 of the negative X direction,
``Ye+`` / ``Y+@e``
    the positive Y direction restricted to even columns (Odd-Even model).

Channels are immutable value objects; two channels are the same channel iff
all four components match.  Channels with any differing component are
*disjoint* in the sense of Definition 6 — they never share buffers and no
implicit dependency exists between them.
"""

from __future__ import annotations

import re
from collections.abc import Iterable
from dataclasses import dataclass, replace

from repro.errors import ChannelParseError

#: Canonical single-letter names for the first dimensions, matching the
#: paper's usage (X, Y, Z, then T for the 4th dimension).
_DIM_LETTERS = "XYZTUVW"

#: Sign constants.  The paper writes D+ and D-.
POS = +1
NEG = -1

_CHANNEL_RE = re.compile(
    r"""^
    (?P<dim>[A-Z])            # dimension letter
    (?P<vc>\d*)               # optional VC number (default 1)
    (?P<sign>[+\-*])          # direction, * = both (parsed by parse_star)
    (?:@(?P<cls>[A-Za-z0-9_]+))?   # optional spatial class
    $""",
    re.VERBOSE,
)


def dim_name(dim: int) -> str:
    """Return the paper-style letter for dimension index ``dim`` (0-based).

    Dimensions beyond the alphabet window are written ``D8``, ``D9``…

    >>> dim_name(0), dim_name(1), dim_name(2), dim_name(3)
    ('X', 'Y', 'Z', 'T')
    """
    if 0 <= dim < len(_DIM_LETTERS):
        return _DIM_LETTERS[dim]
    return f"D{dim + 1}"


def dim_index(name: str) -> int:
    """Inverse of :func:`dim_name`.

    >>> dim_index("X"), dim_index("T"), dim_index("D9")
    (0, 3, 8)
    """
    name = name.strip().upper()
    if len(name) == 1 and name in _DIM_LETTERS:
        return _DIM_LETTERS.index(name)
    if name.startswith("D") and name[1:].isdigit():
        return int(name[1:]) - 1
    raise ChannelParseError(f"unknown dimension name: {name!r}")


@dataclass(frozen=True, order=True)
class Channel:
    """One unidirectional (virtual) channel class.

    Parameters
    ----------
    dim:
        0-based dimension index (0 = X, 1 = Y, ...).
    sign:
        ``+1`` for the positive direction, ``-1`` for the negative one.
    vc:
        Virtual-channel number, 1-based as in the paper.  Channels that
        differ only in ``vc`` are disjoint (Assumption 5).
    cls:
        Optional spatial class tag.  Channels that differ only in ``cls``
        are disjoint (Definition 6, e.g. ``X_even`` vs ``X_odd``).  The
        empty string means "everywhere".
    """

    dim: int
    sign: int
    vc: int = 1
    cls: str = ""

    def __post_init__(self) -> None:
        if self.sign not in (POS, NEG):
            raise ChannelParseError(f"sign must be +1 or -1, got {self.sign}")
        if self.dim < 0:
            raise ChannelParseError(f"dim must be >= 0, got {self.dim}")
        if self.vc < 1:
            raise ChannelParseError(f"vc numbers are 1-based, got {self.vc}")

    # -- presentation ------------------------------------------------------

    @property
    def dim_letter(self) -> str:
        """Paper-style dimension letter (``X``, ``Y``, ...)."""
        return dim_name(self.dim)

    @property
    def sign_char(self) -> str:
        """``'+'`` or ``'-'``."""
        return "+" if self.sign == POS else "-"

    def __str__(self) -> str:
        vc = "" if self.vc == 1 else str(self.vc)
        cls = f"@{self.cls}" if self.cls else ""
        return f"{self.dim_letter}{vc}{self.sign_char}{cls}"

    def __repr__(self) -> str:  # keep reprs short in test output
        return f"Channel({self!s})"

    # -- algebra -----------------------------------------------------------

    @property
    def opposite(self) -> "Channel":
        """The channel with the same dim/vc/cls and reversed direction."""
        return replace(self, sign=-self.sign)

    def same_dim(self, other: "Channel") -> bool:
        """True when both channels lie along the same dimension."""
        return self.dim == other.dim

    def forms_pair_with(self, other: "Channel") -> bool:
        """Definition 3: do the two channels form a complete D-pair?

        A pair requires the same dimension and opposite signs; VC numbers
        and spatial classes may differ (``X2+`` with ``X1-`` is a pair).
        """
        return self.dim == other.dim and self.sign == -other.sign

    def with_vc(self, vc: int) -> "Channel":
        """A copy of this channel on virtual channel ``vc``."""
        return replace(self, vc=vc)

    def with_cls(self, cls: str) -> "Channel":
        """A copy of this channel with spatial class ``cls``."""
        return replace(self, cls=cls)

    # -- parsing -----------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "Channel":
        """Parse paper notation such as ``"X+"``, ``"Y2-"``, ``"Y+@e"``.

        >>> Channel.parse("X+")
        Channel(X+)
        >>> Channel.parse("Y2-")
        Channel(Y2-)
        >>> Channel.parse("Z+@o").cls
        'o'
        """
        m = _CHANNEL_RE.match(text.strip())
        if m is None or m.group("sign") == "*":
            raise ChannelParseError(
                f"cannot parse channel {text!r} (use e.g. 'X+', 'Y2-', 'Y+@e';"
                " star notation is handled by parse_star)"
            )
        return cls(
            dim=dim_index(m.group("dim")),
            sign=POS if m.group("sign") == "+" else NEG,
            vc=int(m.group("vc") or "1"),
            cls=m.group("cls") or "",
        )


def parse_star(text: str) -> tuple[Channel, Channel]:
    """Parse the paper's star notation ``"X*"`` into both directions.

    ``D*`` represents both the positive and negative channels of dimension
    ``D`` (Definition 1).  VC and class qualifiers are applied to both.

    >>> parse_star("Y2*")
    (Channel(Y2+), Channel(Y2-))
    """
    m = _CHANNEL_RE.match(text.strip())
    if m is None or m.group("sign") != "*":
        raise ChannelParseError(f"not a star channel spec: {text!r}")
    base = Channel(
        dim=dim_index(m.group("dim")),
        sign=POS,
        vc=int(m.group("vc") or "1"),
        cls=m.group("cls") or "",
    )
    return base, base.opposite


def channels(spec: str | Iterable[str | Channel]) -> tuple[Channel, ...]:
    """Build a tuple of channels from a compact specification.

    Accepts a whitespace/comma separated string or an iterable mixing
    strings and :class:`Channel` objects.  Star entries expand to both
    directions, preserving order.

    >>> channels("X+ X- Y-")
    (Channel(X+), Channel(X-), Channel(Y-))
    >>> channels("Z2*")
    (Channel(Z2+), Channel(Z2-))
    """
    if isinstance(spec, str):
        items: Iterable[str | Channel] = spec.replace(",", " ").split()
    else:
        items = spec
    out: list[Channel] = []
    for item in items:
        if isinstance(item, Channel):
            out.append(item)
        elif "*" in item:
            out.extend(parse_star(item))
        else:
            out.append(Channel.parse(item))
    return tuple(out)


def complete_pairs(chans: Iterable[Channel]) -> dict[int, tuple[tuple[Channel, ...], tuple[Channel, ...]]]:
    """Map each dimension with a complete pair to its (positive, negative) channels.

    A dimension has a complete pair when at least one positive and one
    negative channel of that dimension are present, regardless of VC or
    class (Definition 3).

    >>> sorted(complete_pairs(channels("X+ X- Y+")))
    [0]
    """
    pos: dict[int, list[Channel]] = {}
    neg: dict[int, list[Channel]] = {}
    for ch in chans:
        (pos if ch.sign == POS else neg).setdefault(ch.dim, []).append(ch)
    return {
        d: (tuple(pos[d]), tuple(neg[d]))
        for d in sorted(set(pos) & set(neg))
    }


def dims_covered(chans: Iterable[Channel]) -> tuple[int, ...]:
    """The sorted set of dimension indices present in ``chans``."""
    return tuple(sorted({ch.dim for ch in chans}))
