"""Ordered sequences of disjoint partitions (Theorem 3).

A :class:`PartitionSequence` is the paper's central design object: an
ordered list of pairwise-disjoint partitions.  Packets may use channels of
partition *i* after channels of partition *j* only when ``i >= j`` —
transitions between partitions happen "in a consecutive (ascending) order".

A sequence that passes :meth:`PartitionSequence.validate` is, by Theorems
1-3, guaranteed to induce an acyclic channel dependency graph on any mesh /
k-ary n-cube; the :mod:`repro.cdg` package verifies this independently on
concrete networks.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.core.channel import Channel
from repro.core.partition import Partition
from repro.errors import PartitionError, TheoremViolation

_DEFAULT_NAMES = [f"P{letter}" for letter in "ABCDEFGHIJKLMNOPQRSTUVWXYZ"]


@dataclass(frozen=True)
class PartitionSequence:
    """An ordered tuple of pairwise-disjoint partitions.

    Construction validates *structure* (non-empty, disjointness); theorem
    compliance is checked by :func:`repro.core.theorems.check_sequence`
    (or on demand via :meth:`validate`).
    """

    partitions: tuple[Partition, ...]

    def __post_init__(self) -> None:
        if not self.partitions:
            raise PartitionError("a partition sequence needs at least one partition")
        seen: dict[Channel, str] = {}
        for part in self.partitions:
            for ch in part:
                if ch in seen:
                    raise PartitionError(
                        f"channel {ch} appears in both {seen[ch]} and"
                        f" {part.name or '?'}: partitions must be disjoint"
                    )
                seen[ch] = part.name or "?"

    # -- construction ------------------------------------------------------

    @classmethod
    def of(cls, *specs: str | Partition | Iterable[str | Channel]) -> "PartitionSequence":
        """Build a sequence from compact per-partition channel specs.

        Partitions are auto-named PA, PB, ... unless already named.

        >>> PartitionSequence.of("X+ X- Y-", "Y+")
        PartitionSequence(PA[X+ X- Y-] -> PB[Y+])
        """
        parts: list[Partition] = []
        for i, spec in enumerate(specs):
            name = _DEFAULT_NAMES[i] if i < len(_DEFAULT_NAMES) else f"P{i}"
            if isinstance(spec, Partition):
                parts.append(spec if spec.name else spec.renamed(name))
            else:
                parts.append(Partition.of(spec, name=name))
        return cls(tuple(parts))

    @classmethod
    def parse(cls, text: str) -> "PartitionSequence":
        """Parse arrow notation, e.g. ``"X+ X- Y- -> Y+"``.

        The paper's Table 1 entries are written exactly this way.
        """
        return cls.of(*[seg.strip() for seg in text.split("->")])

    # -- presentation ------------------------------------------------------

    def __str__(self) -> str:
        return " -> ".join(str(p) for p in self.partitions)

    def __repr__(self) -> str:
        return f"PartitionSequence({self})"

    def arrow_notation(self) -> str:
        """Channel-only arrow form matching the paper's tables.

        >>> PartitionSequence.of("X+ X- Y-", "Y+").arrow_notation()
        'X+ X- Y- -> Y+'
        """
        return " -> ".join(" ".join(str(c) for c in p) for p in self.partitions)

    # -- container protocol -------------------------------------------------

    def __iter__(self) -> Iterator[Partition]:
        return iter(self.partitions)

    def __len__(self) -> int:
        return len(self.partitions)

    def __getitem__(self, idx: int) -> Partition:
        return self.partitions[idx]

    # -- structure ---------------------------------------------------------

    @property
    def all_channels(self) -> tuple[Channel, ...]:
        """Every channel in sequence order (partition order, then intra order)."""
        return tuple(ch for part in self.partitions for ch in part)

    @property
    def channel_count(self) -> int:
        """Total number of channels across all partitions."""
        return sum(len(p) for p in self.partitions)

    def partition_index(self, ch: Channel) -> int:
        """Index of the partition containing ``ch``.

        Raises :class:`PartitionError` when the channel is not in the design.
        """
        for i, part in enumerate(self.partitions):
            if ch in part:
                return i
        raise PartitionError(f"channel {ch} is not covered by this sequence")

    def covers(self, ch: Channel) -> bool:
        """True when some partition contains ``ch``."""
        return any(ch in part for part in self.partitions)

    def reversed(self) -> "PartitionSequence":
        """The sequence traced in the opposite consecutive order (§5.3.3)."""
        return PartitionSequence(tuple(reversed(self.partitions)))

    def validate(self) -> "PartitionSequence":
        """Check Theorem 1 on every partition; return self for chaining.

        Disjointness (a Theorem 3 precondition) is already enforced by the
        constructor.  Raises :class:`TheoremViolation` on failure.
        """
        for part in self.partitions:
            if part.pair_count > 1:
                raise TheoremViolation(
                    1,
                    f"partition {part} holds {part.pair_count} complete D-pairs;"
                    " Theorem 1 allows at most one",
                )
        return self
