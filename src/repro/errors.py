"""Exception hierarchy for the EbDa reproduction library.

Every error raised by the library derives from :class:`EbdaError` so callers
can catch library failures with a single except clause while still
distinguishing the precise failure mode.
"""

from __future__ import annotations


class EbdaError(Exception):
    """Base class for all errors raised by this library."""


class ChannelParseError(EbdaError, ValueError):
    """A channel string such as ``"X2+"`` could not be parsed."""


class PartitionError(EbdaError, ValueError):
    """A partition or partition sequence violates a structural rule."""


class TheoremViolation(EbdaError, ValueError):
    """A construction violates one of the EbDa theorems.

    The offending theorem is recorded in :attr:`theorem` (1, 2 or 3) and a
    human-readable explanation in ``args[0]``.
    """

    def __init__(self, theorem: int, message: str) -> None:
        super().__init__(message)
        self.theorem = theorem


class TopologyError(EbdaError, ValueError):
    """A topology is malformed or an operation referenced a missing node/link."""


class RoutingError(EbdaError, ValueError):
    """A routing function was queried with an invalid state or has no legal output."""


class ConfigError(EbdaError, ValueError):
    """A run configuration is invalid or unsupported as a whole.

    Raised eagerly — before any simulation state is built — when a
    :class:`~repro.sim.runner.RunConfig` names an unknown simulation
    backend or requests a feature the chosen backend does not implement
    (e.g. ``metrics=`` on the vectorized backend).  The message always
    names the offending field and the backend that would accept it.
    """


class SimulationError(EbdaError, RuntimeError):
    """The simulator reached an inconsistent internal state."""


class FaultError(SimulationError):
    """A runtime fault (link/router failure, flit corruption) could not be
    absorbed: the degraded network violates an invariant the simulation
    needs (e.g. the rerouted design is no longer EbDa-valid)."""


class UnroutableError(FaultError):
    """The degraded network cannot route required traffic at all — it is
    disconnected, or a packet's source can no longer reach its destination
    under any legal route."""


class DeadlockDetected(SimulationError):
    """Raised (optionally) when the deadlock detector finds a cyclic wait.

    Attributes
    ----------
    cycle:
        The list of packet ids forming the cyclic wait, in order.
    cycle_channels:
        The concrete channels each packet holds while waiting.
    """

    def __init__(self, cycle, cycle_channels=None) -> None:
        super().__init__(f"deadlock cycle among packets: {list(cycle)}")
        self.cycle = list(cycle)
        self.cycle_channels = list(cycle_channels or [])
