"""V6 — scalability: construction + verification cost vs network size.

§2: "Dally's theory is limited to small network sizes where it is
feasible to check all possible channel dependencies.  We solve the
scalability limitations of Dally's theorem to networks with arbitrary
large dimensions."

Measured two ways:

* **design cost** — Algorithm 1 and the minimal construction run in
  milliseconds for any dimension/VC budget; the *number of designs to
  examine* is 1, versus the 4^cycles combinations of the turn-model
  search (S2);
* **verification cost** — checking one design on a concrete mesh is a
  single acyclicity pass whose size grows linearly with the wire count
  (O(radix^n) wires, each with constant-bounded dependencies), not
  exponentially with the turn combinatorics.
"""

from __future__ import annotations

import time

from repro.analysis import text_table
from repro.cdg import turn_combinations, verify_design
from repro.core import minimal_fully_adaptive, partition_vc_budget
from repro.experiments.base import Check, ExperimentResult, check_true
from repro.topology import Mesh


def run(radixes: tuple[int, ...] = (4, 6, 8, 12, 16)) -> ExperimentResult:
    design = minimal_fully_adaptive(2)
    checks: list[Check] = []
    rows = []
    wires = []
    deps = []
    times = []
    for k in radixes:
        mesh = Mesh(k, k)
        t0 = time.perf_counter()
        verdict = verify_design(design, mesh)
        dt = time.perf_counter() - t0
        wires.append(verdict.wires)
        deps.append(verdict.dependencies)
        times.append(dt)
        rows.append(
            [f"{k}x{k}", verdict.wires, verdict.dependencies, f"{dt * 1000:.1f} ms",
             "acyclic" if verdict.acyclic else "CYCLIC"]
        )
        checks.append(check_true(f"acyclic at {k}x{k}", verdict.acyclic))

    # Dependencies grow linearly with wires (constant turn fan-out per
    # router) — the verification problem scales with the machine, not with
    # the design-space combinatorics.
    ratios = [d / w for d, w in zip(deps, wires)]
    checks.append(
        check_true(
            "dependencies per wire stay bounded",
            max(ratios) <= ratios[0] * 1.5,
            note=f"deps/wire = {[round(r, 2) for r in ratios]}",
        )
    )

    # Design cost: a handful of partitions, produced directly.
    t0 = time.perf_counter()
    for n in (2, 3, 4, 5, 6):
        minimal_fully_adaptive(n)
    for budget in ([2, 2], [3, 2, 3], [2, 2, 2, 2]):
        partition_vc_budget(budget)
    design_ms = (time.perf_counter() - t0) * 1000
    rows.append(["8 constructions (n<=6, 3 budgets)", "-", "-", f"{design_ms:.1f} ms", "-"])
    checks.append(
        check_true(
            "construction cost is negligible",
            design_ms < 1000,
            note=f"{design_ms:.1f} ms for 8 designs",
        )
    )
    checks.append(
        check_true(
            "vs turn-model search: 1 design examined, not 4^cycles",
            turn_combinations(3, 2) > 10**12,
            note=f"3D +1 VC/dim search space: {turn_combinations(3, 2):,} combinations",
        )
    )

    return ExperimentResult(
        exp_id="V6-scaling",
        title="Construction and verification cost vs network size",
        text=text_table(["mesh", "wires", "dependencies", "verify time", "verdict"], rows),
        data={"wires": wires, "deps": deps},
        checks=tuple(checks),
    )
