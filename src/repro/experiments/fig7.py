"""Figure 7 — 2D fully adaptive designs and the 6-channel minimum (§4).

Reproduces: the 4-partition/8-channel per-region construction (Fig 7a),
the two 2-partition/6-channel constructions (Fig 7b = DyXY, Fig 7c), full
adaptivity of all three measured on a concrete mesh, and minimality: an
exhaustive search over partition assignments confirms no 5-channel design
is fully adaptive.
"""

from __future__ import annotations

from itertools import combinations, product

from repro.analysis import adaptivity_report, text_table
from repro.cdg import verify_design
from repro.core import (
    Channel,
    Partition,
    PartitionSequence,
    catalog,
    check_sequence,
    covers_all_regions,
    min_channels,
    per_region_construction,
)
from repro.core.minimal import vc_requirements
from repro.experiments.base import Check, ExperimentResult, check_eq, check_true
from repro.routing import TurnTableRouting
from repro.topology import Mesh


def _five_channel_inventories() -> list[tuple[Channel, ...]]:
    """Candidate 5-channel inventories (up to 2 VCs/dim, both dims present)."""
    pool = [
        Channel(d, s, v) for d in (0, 1) for s in (+1, -1) for v in (1, 2)
    ]
    out = []
    for combo in combinations(pool, 5):
        dims = {c.dim for c in combo}
        signs = {(c.dim, c.sign) for c in combo}
        # A routable design needs all four direction groups present.
        if dims == {0, 1} and len(signs) == 4:
            out.append(combo)
    return out


def _partitions_of(channels: tuple[Channel, ...]) -> list[list[tuple[Channel, ...]]]:
    """All ways to split channels into at most 3 ordered groups."""
    assignments = []
    for labels in product(range(3), repeat=len(channels)):
        groups: dict[int, list[Channel]] = {}
        for ch, lab in zip(channels, labels):
            groups.setdefault(lab, []).append(ch)
        ordered = [tuple(groups[k]) for k in sorted(groups)]
        assignments.append(ordered)
    return assignments


def _exists_fully_adaptive_5channel(mesh: Mesh) -> bool:
    """Exhaustively search 5-channel designs for structural full adaptivity.

    Uses the region-coverage criterion (every quadrant covered by a single
    partition), which upper-bounds true adaptivity — if no design passes
    structurally, none passes operationally.
    """
    for inventory in _five_channel_inventories():
        for groups in _partitions_of(inventory):
            parts = []
            ok = True
            for i, grp in enumerate(groups):
                part = Partition(grp, name=f"P{i}")
                if part.pair_count > 1:
                    ok = False
                    break
                parts.append(part)
            if not ok:
                continue
            seq = PartitionSequence(tuple(parts))
            if covers_all_regions(seq, 2):
                return True
    return False


def run(mesh_size: int = 4) -> ExperimentResult:
    mesh = Mesh(mesh_size, mesh_size)
    checks: list[Check] = []
    rows = []

    designs = {
        "Fig 7a (per-region, 8ch)": per_region_construction(2),
        "Fig 7b (DyXY, 6ch)": catalog.dyxy_partitions(),
        "Fig 7c (X-paired, 6ch)": catalog.fig7c_partitions(),
    }
    for name, design in designs.items():
        verdict = verify_design(design, mesh)
        routing = TurnTableRouting(mesh, design, label=name)
        rep = adaptivity_report(mesh, routing)
        rows.append(
            [name, design.arrow_notation(), design.channel_count,
             f"{rep.adaptivity:.3f}"]
        )
        checks.append(check_true(f"CDG acyclic: {name}", verdict.acyclic))
        checks.append(check_true(f"fully adaptive: {name}", rep.is_fully_adaptive))

    checks.append(check_eq("minimum channel formula N(2)", 6, min_channels(2)))
    checks.append(
        check_eq("Fig 7b VC budget", {"X": 1, "Y": 2},
                 vc_requirements(catalog.dyxy_partitions()))
    )
    checks.append(
        check_eq("Fig 7c VC budget", {"X": 2, "Y": 1},
                 vc_requirements(catalog.fig7c_partitions()))
    )
    checks.append(
        check_true(
            "no 5-channel design is fully adaptive (exhaustive search)",
            not _exists_fully_adaptive_5channel(mesh),
        )
    )

    return ExperimentResult(
        exp_id="Fig7",
        title="2D fully adaptive designs and the 6-channel minimum",
        text=text_table(["design", "partitions", "channels", "adaptivity"], rows),
        data={},
        checks=tuple(checks),
    )
