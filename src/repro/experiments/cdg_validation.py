"""V1 — the central soundness claim, verified at scale.

Every partition sequence Algorithm 1 produces — across VC budgets,
arrangements and derivations — must induce an acyclic concrete channel
dependency graph (Theorems 1-3).  This experiment sweeps a grid of VC
budgets, runs Algorithm 1/2, and verifies *every* resulting design on 2D
and 3D meshes, plus negative controls that must be cyclic.
"""

from __future__ import annotations

from itertools import islice

from repro.analysis import text_table
from repro.cdg import build_turn_cdg, verdict_for, verify_design
from repro.core import (
    Partition,
    arrangement1,
    channels,
    derive_by_rotation,
    partition_vc_budget,
    sets_from_vc_counts,
    two_partition_options,
)
from repro.core.extraction import theorem1_turns
from repro.core.turns import TurnSet
from repro.experiments.base import Check, ExperimentResult, check_eq, check_true
from repro.topology import Mesh


def run(*, derivation_limit: int = 12) -> ExperimentResult:
    checks: list[Check] = []
    rows = []
    total = 0
    acyclic = 0

    budgets_2d = [(1, 1), (1, 2), (2, 1), (2, 2), (3, 2), (2, 3)]
    budgets_3d = [(1, 1, 1), (1, 2, 1), (2, 2, 2), (3, 2, 3)]

    for budgets, mesh in ((budgets_2d, Mesh(4, 4)), (budgets_3d, Mesh(3, 3, 3))):
        for budget in budgets:
            designs = [partition_vc_budget(list(budget))]
            designs += list(
                islice(
                    derive_by_rotation(arrangement1(sets_from_vc_counts(list(budget)))),
                    derivation_limit,
                )
            )
            ok = 0
            for design in designs:
                total += 1
                if verify_design(design, mesh).acyclic:
                    acyclic += 1
                    ok += 1
            rows.append([f"{budget}", len(designs), ok])
            checks.append(
                check_eq(f"all designs acyclic for VC budget {budget}",
                         len(designs), ok)
            )

    # The §5.2.2 exceptional options, both dimensions.
    for n, mesh in ((2, Mesh(4, 4)), (3, Mesh(3, 3, 3))):
        options = list(two_partition_options(n))
        ok = sum(1 for seq in options if verify_design(seq, mesh).acyclic)
        total += len(options)
        acyclic += ok
        rows.append([f"exceptional n={n}", len(options), ok])
        checks.append(check_eq(f"exceptional options acyclic n={n}", len(options), ok))

    # Negative controls: designs violating Theorem 1 must be cyclic.
    mesh = Mesh(4, 4)
    bad = Partition.of("X+ X- Y+ Y-")
    bad_set = TurnSet({"bad": theorem1_turns(bad)})
    verdict = verdict_for(build_turn_cdg(mesh, bad_set, channels("X+ X- Y+ Y-")))
    checks.append(
        check_true("two complete pairs in one partition => cyclic", not verdict.acyclic)
    )

    checks.append(
        check_eq("grand total: every generated design acyclic", total, acyclic)
    )

    return ExperimentResult(
        exp_id="V1-cdg",
        title="Every Algorithm-1/2 design has an acyclic concrete CDG",
        text=text_table(["VC budget / family", "designs", "acyclic"], rows),
        data={"total": total, "acyclic": acyclic},
        checks=tuple(checks),
    )
