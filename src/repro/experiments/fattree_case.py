"""E3 — fat-tree case study (the paper's declared future work).

§3.1: "As our future work, we investigate other topologies such as
fat-tree, dragonflies...".  Up*/Down* over a fat-tree is the canonical
deadlock-free scheme and, in EbDa terms, a two-partition consecutive-order
design over link classes (``u`` before ``d``).  This experiment builds a
leaf/spine fat-tree with explicit terminals, verifies the routing's
concrete CDG, measures its path diversity over the spines, and runs
traffic to confirm deadlock freedom.
"""

from __future__ import annotations

from repro.analysis import text_table
from repro.cdg import verify_routing
from repro.experiments.base import Check, ExperimentResult, check_eq, check_true
from repro.routing import UpDownRouting
from repro.sim import NetworkSimulator, TrafficConfig, TrafficGenerator
from repro.topology.fattree import FatTree


def run(
    leaves: int = 4,
    spines: int = 2,
    hosts_per_leaf: int = 2,
    *,
    cycles: int = 1000,
    rate: float = 0.08,
) -> ExperimentResult:
    topo = FatTree(leaves=leaves, spines=spines, hosts_per_leaf=hosts_per_leaf)
    # Topology levels (spines 0, leaves 1, terminals 2) rather than a BFS
    # tree: all spines are roots, so cross-leaf flows keep full spine
    # diversity instead of funnelling through one root.
    levels = {node: 2 - node[0] for node in topo.nodes}
    routing = UpDownRouting(topo, levels=levels)

    checks: list[Check] = []
    rows = []

    verdict = verify_routing(routing, topo, routing.class_rule)
    rows.append(["CDG", str(verdict)])
    checks.append(check_true("up*/down* CDG acyclic on fat-tree", verdict.acyclic))

    connected = all(
        routing.candidates(s, d, None)
        for s in topo.endpoints
        for d in topo.endpoints
        if s != d
    )
    checks.append(check_true("all terminal pairs routable", connected))

    # Path diversity: cross-leaf flows may climb to any spine.
    cross_leaf = [
        (s, d)
        for s in topo.endpoints
        for d in topo.endpoints
        if s != d and topo.leaf_of(s) != topo.leaf_of(d)
    ]
    up_choices = [
        len(routing.candidates(topo.leaf_of(s), d, None)) for s, d in cross_leaf
    ]
    rows.append(["mean spine choices (cross-leaf)", f"{sum(up_choices)/len(up_choices):.2f}"])
    checks.append(
        check_eq(
            "cross-leaf flows may use every spine",
            spines,
            min(up_choices),
        )
    )

    sim = NetworkSimulator(topo, routing, routing.class_rule, buffer_depth=4, watchdog=3000)
    traffic = TrafficGenerator(
        topo, TrafficConfig(injection_rate=rate, packet_length=4, seed=41)
    )
    stats = sim.run(cycles, traffic, drain=True)
    rows.append(
        ["simulation",
         f"lat={stats.avg_total_latency:.1f},"
         f" delivered={stats.packets_delivered}/{stats.packets_injected}"]
    )
    checks.append(
        check_true(
            "no deadlock, all delivered",
            not stats.deadlocked and stats.delivery_ratio == 1.0,
        )
    )
    checks.append(
        check_true(
            "switches never inject (terminals are the only endpoints)",
            len(topo.endpoints) == leaves * hosts_per_leaf,
        )
    )

    return ExperimentResult(
        exp_id="E3-fattree",
        title="Fat-tree (future work): up*/down* as a two-partition design",
        text=text_table(["item", "result"], rows),
        data={},
        checks=tuple(checks),
    )
