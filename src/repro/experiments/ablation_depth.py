"""A4 — buffer-depth ablation: the classic depth/latency trade.

Wormhole's selling point (paper §1) is that it does not need buffers
sized to the packet; this ablation quantifies what depth actually buys:
latency at load falls steeply from depth 1 (heavy chained blocking) and
flattens once the credit round-trip is covered — while deadlock freedom
is invariant across all depths (it is the turn set's property, never the
buffers').
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis import text_table
from repro.experiments.base import Check, ExperimentResult, check_true
from repro.routing import MinimalFullyAdaptive
from repro.sim import RunConfig, run_point, uniform
from repro.topology import Mesh


def run(
    mesh_size: int = 6,
    *,
    cycles: int = 1200,
    rate: float = 0.05,
    depths: tuple[int, ...] = (1, 2, 4, 8),
) -> ExperimentResult:
    mesh = Mesh(mesh_size, mesh_size)
    base = RunConfig(
        cycles=cycles,
        injection_rate=rate,
        packet_length=6,
        watchdog=4000,
        drain=True,
        seed=47,
        pattern=uniform,
    )
    rows = []
    checks: list[Check] = []
    latencies = []
    for depth in depths:
        result = run_point(mesh, MinimalFullyAdaptive(mesh), replace(base, buffer_depth=depth))
        latencies.append(result.avg_latency)
        rows.append(
            [depth, f"{result.avg_latency:.1f}", f"{result.throughput:.4f}",
             "DEADLOCK" if result.deadlocked else "ok"]
        )
        checks.append(
            check_true(
                f"deadlock-free at depth {depth} (safety is depth-invariant)",
                not result.deadlocked and result.stats.delivery_ratio == 1.0,
            )
        )

    checks.append(
        check_true(
            "latency decreases (weakly) with depth",
            all(a >= b * 0.98 for a, b in zip(latencies, latencies[1:])),
            note=f"latencies: {[round(l, 1) for l in latencies]}",
        )
    )
    checks.append(
        check_true(
            "single-flit buffers pay the largest penalty",
            latencies[0] > latencies[-1],
            note=f"depth {depths[0]}: {latencies[0]:.1f} vs depth {depths[-1]}:"
            f" {latencies[-1]:.1f} cycles",
        )
    )

    return ExperimentResult(
        exp_id="A4-depth",
        title="Buffer-depth ablation (adaptive design, uniform traffic)",
        text=text_table(["depth", "avg latency", "throughput", "status"], rows),
        data={"latencies": latencies},
        checks=tuple(checks),
    )
