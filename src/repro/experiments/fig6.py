"""Figure 6 — the five partitioning strategies P1..P5 of Section 4.

Reproduces: P1 = XY routing (deterministic), P2 = partially adaptive
(fully adaptive in NE only), P3 = west-first, P4 = negative-first, and the
P5 observation that VCs added inside one partition do **not** increase
minimal-path adaptivity (they add identical turns and U-/I-turns only).
"""

from __future__ import annotations

from repro.analysis import adaptivity_report, region_pairs, text_table
from repro.cdg import verify_design
from repro.core import TurnKind, catalog, extract_turns
from repro.experiments.base import Check, ExperimentResult, check_eq, check_true
from repro.routing import TurnTableRouting
from repro.topology import Mesh


def run(mesh_size: int = 4) -> ExperimentResult:
    mesh = Mesh(mesh_size, mesh_size)
    designs = {
        "P1 (XY)": catalog.p1_xy(),
        "P2 (partial)": catalog.p2_partially_adaptive(),
        "P3 (west-first)": catalog.p3_west_first(),
        "P4 (negative-first)": catalog.p4_negative_first(),
        "P5 (west-first + VCs)": catalog.p5_west_first_vcs(),
    }
    checks: list[Check] = []
    rows = []
    adapt = {}
    for name, design in designs.items():
        verdict = verify_design(design, mesh)
        checks.append(check_true(f"CDG acyclic: {name}", verdict.acyclic))
        routing = TurnTableRouting(mesh, design, label=name)
        rep = adaptivity_report(mesh, routing)
        adapt[name] = rep.adaptivity
        turnset = extract_turns(design)
        rows.append(
            [name, design.arrow_notation(), f"{rep.adaptivity:.3f}",
             len(turnset.of_kind(TurnKind.DEGREE90))]
        )

    # P2 is fully adaptive in the NE region, deterministic elsewhere.
    p2 = TurnTableRouting(mesh, designs["P2 (partial)"])
    ne = adaptivity_report(mesh, p2, region_pairs(mesh, (+1, +1)))
    checks.append(check_true("P2 fully adaptive in NE region", ne.is_fully_adaptive))
    sw = adaptivity_report(mesh, p2, region_pairs(mesh, (-1, -1)))
    checks.append(
        check_true("P2 deterministic toward SW", sw.routable_paths == sw.pairs)
    )

    # Adaptivity ordering: XY < P2 < P3 ~ P4; P5 == P3 in minimal adaptivity.
    checks.append(
        check_true(
            "adaptivity ordering P1 < P2 < P3",
            adapt["P1 (XY)"] < adapt["P2 (partial)"] < adapt["P3 (west-first)"],
        )
    )
    checks.append(
        check_eq(
            "VCs inside a partition do not add minimal adaptivity (P5 == P3)",
            round(adapt["P3 (west-first)"], 9),
            round(adapt["P5 (west-first + VCs)"], 9),
        )
    )

    return ExperimentResult(
        exp_id="Fig6",
        title="Partitioning strategies P1..P5 and their adaptiveness",
        text=text_table(["strategy", "partitions", "adaptivity", "90-deg turns"], rows),
        data={"adaptivity": adapt},
        checks=tuple(checks),
    )
