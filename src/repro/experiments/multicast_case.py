"""E4 — dual-path Hamiltonian multicast (§6.2's referenced strategy [26]).

The Hamiltonian-path partitioning is not just a unicast curiosity: Lin &
Ni introduced it for deadlock-free *multicast* wormhole routing.  This
experiment exercises the full strategy on the EbDa partitioning:

* both monotone sub-networks (partitions PA/PB) have acyclic CDGs;
* dual-path multicast costs fewer total hops than separate unicasts for
  scattered destination sets;
* simulated multicast worms deliver a copy at every waypoint plus the
  final stop, with many concurrent multicasts and zero deadlock.
"""

from __future__ import annotations

import random

from repro.analysis import text_table
from repro.cdg import verify_routing
from repro.experiments.base import Check, ExperimentResult, check_true
from repro.routing.multicast import (
    HamiltonianPathRouting,
    MulticastHamiltonianRouting,
    dual_path_cost,
    plan_dual_path,
    unicast_cost,
)
from repro.sim import NetworkSimulator, Packet
from repro.topology import Mesh
from repro.topology.classes import row_parity


def run(
    mesh_size: int = 6,
    *,
    groups: int = 6,
    group_size: int = 7,
    packet_length: int = 4,
    seed: int = 11,
) -> ExperimentResult:
    mesh = Mesh(mesh_size, mesh_size)
    rng = random.Random(seed)
    checks: list[Check] = []
    rows = []

    for direction in ("up", "down"):
        verdict = verify_routing(HamiltonianPathRouting(mesh, direction), mesh, row_parity)
        rows.append([f"{direction} network CDG", str(verdict)])
        checks.append(
            check_true(f"{direction} network acyclic", verdict.acyclic)
        )

    # Cost comparison over random multicast sets.
    wins = 0
    total_dual = total_uni = 0
    for _ in range(groups):
        src = rng.choice(mesh.nodes)
        dsts = rng.sample([n for n in mesh.nodes if n != src], group_size)
        dual = dual_path_cost(mesh, src, dsts)
        uni = unicast_cost(mesh, src, dsts)
        total_dual += dual
        total_uni += uni
        if dual <= uni:
            wins += 1
    rows.append(["total hops (dual-path vs unicasts)", f"{total_dual} vs {total_uni}"])
    checks.append(
        check_true(
            "dual-path multicast cheaper than separate unicasts overall",
            total_dual < total_uni,
            note=f"{total_dual} vs {total_uni} hops over {groups} groups",
        )
    )

    # Simulate all groups concurrently (both worms per group).
    sims = {
        d: NetworkSimulator(
            mesh,
            MulticastHamiltonianRouting(mesh, d),
            row_parity,
            buffer_depth=4,
            watchdog=3000,
        )
        for d in ("up", "down")
    }
    worms: list[Packet] = []
    pid = 0
    rng = random.Random(seed)  # same groups as the cost comparison
    for _ in range(groups):
        src = rng.choice(mesh.nodes)
        dsts = rng.sample([n for n in mesh.nodes if n != src], group_size)
        high, low = plan_dual_path(mesh, src, dsts)
        for tmpl, direction in ((high, "up"), (low, "down")):
            if tmpl is None:
                continue
            worm = Packet(
                pid=pid, src=tmpl.src, dst=tmpl.dst, length=packet_length,
                created=0, waypoints=tmpl.waypoints,
            )
            pid += 1
            worms.append(worm)
            sims[direction].offer_packet(worm)

    for sim in sims.values():
        for _ in range(6000):
            sim.step()
            if sim.is_idle():
                break

    all_final = all(w.delivered is not None for w in worms)
    all_copies = all(len(w.copies) == len(w.waypoints) for w in worms)
    no_deadlock = not any(sim.stats.deadlocked for sim in sims.values())
    copies = sum(sim.stats.multicast_copies for sim in sims.values())
    rows.append(
        ["simulation", f"{len(worms)} worms, {copies} waypoint copies,"
         f" finals={'all' if all_final else 'MISSING'}"]
    )
    checks.append(check_true("every worm reached its final stop", all_final))
    checks.append(check_true("every waypoint absorbed its copy", all_copies))
    checks.append(check_true("no deadlock among concurrent multicasts", no_deadlock))

    return ExperimentResult(
        exp_id="E4-multicast",
        title="Dual-path Hamiltonian multicast over the §6.2 partitioning",
        text=text_table(["item", "result"], rows),
        data={"dual": total_dual, "unicast": total_uni},
        checks=tuple(checks),
    )
