"""Figure 4 — U-/I-turns under ascending channel numbering.

Reproduces: (a) three Y VCs in a partition give 9 U-turns + 6 I-turns =
15 = n(n-1)/2; (b) a different numbering gives the same counts; (c) a
complete pair admits exactly one of its two U-turns; and the closed-form
identity n(n-1)/2 = ab + C(a,2) + C(b,2) over a range of (a, b).
"""

from __future__ import annotations

from repro.analysis import text_table
from repro.core import Partition, channels
from repro.core.extraction import theorem2_turns
from repro.core.numbering import (
    census_for_ordering,
    identity_holds,
    iturn_count,
    total_ui_turns,
    uturn_count,
)
from repro.experiments.base import Check, ExperimentResult, check_eq, check_true


def run() -> ExperimentResult:
    checks: list[Check] = []

    # (a) canonical ordering of six Y channels
    order_a = channels("Y1+ Y1- Y2+ Y2- Y3+ Y3-")
    census_a = census_for_ordering(order_a)
    checks.append(check_eq("U-turns (Fig 4a)", 9, len(census_a.u_turns)))
    checks.append(check_eq("I-turns (Fig 4a)", 6, len(census_a.i_turns)))
    checks.append(check_eq("total = n(n-1)/2", 15, census_a.total))

    # (b) an alternative arrangement gives the same counts
    order_b = channels("Y2+ Y1- Y3+ Y2- Y1+ Y3-")
    census_b = census_for_ordering(order_b)
    checks.append(check_eq("U-turns (Fig 4b)", 9, len(census_b.u_turns)))
    checks.append(check_eq("I-turns (Fig 4b)", 6, len(census_b.i_turns)))

    # (c) one complete pair -> exactly one U-turn is granted
    partition = Partition.of("X+ X- Y+")
    pair_turns = [t for t in theorem2_turns(partition) if t.src.dim == 0]
    checks.append(
        check_eq("one U-turn per complete pair (Fig 4c)", 1, len(pair_turns))
    )

    # closed-form identity over a grid of (a, b)
    grid_ok = all(identity_holds(a, b) for a in range(0, 8) for b in range(0, 8))
    checks.append(check_true("identity n(n-1)/2 = ab + C(a,2) + C(b,2)", grid_ok))

    rows = [
        ["Y1+ Y1- Y2+ Y2- Y3+ Y3-", len(census_a.u_turns), len(census_a.i_turns), census_a.total],
        ["Y2+ Y1- Y3+ Y2- Y1+ Y3-", len(census_b.u_turns), len(census_b.i_turns), census_b.total],
    ]
    for a, b in [(1, 1), (2, 1), (2, 2), (3, 3), (4, 2)]:
        rows.append(
            [f"formula a={a} b={b}", uturn_count(a, b), iturn_count(a, b), total_ui_turns(a + b)]
        )
    return ExperimentResult(
        exp_id="Fig4",
        title="U- and I-turns formed by ascending channel numbering",
        text=text_table(["ordering / formula", "U", "I", "total"], rows),
        data={"census_a": (len(census_a.u_turns), len(census_a.i_turns))},
        checks=tuple(checks),
    )
