"""Figure 8 — full turn extraction for the 3D minimal design (2,2,4 VCs).

Reproduces the figure's structure quantitatively: four partitions, each
contributing 10 Theorem-1 turns and exactly one Theorem-2 U-turn; six
inter-partition transitions of 16 turns each (10 x 90-degree + 6 U/I);
140 turns in total.  Verifies the complete set is concretely acyclic and
probes the paper's maximality claim ("adding any more turn creates the
possibility of deadlock") by re-verifying the CDG with each disallowed
turn added.
"""

from __future__ import annotations

from itertools import product

from repro.analysis import format_turn_table
from repro.cdg import build_turn_cdg, verdict_for, verify_design
from repro.core import TurnKind, catalog, extract_turns
from repro.core.minimal import vc_requirements
from repro.core.turns import Turn, TurnSet
from repro.experiments.base import Check, ExperimentResult, check_eq, check_true
from repro.topology import Mesh


def run(mesh_size: int = 3, *, maximality_probe: bool = True) -> ExperimentResult:
    mesh = Mesh(mesh_size, mesh_size, mesh_size)
    design = catalog.fig9b_partitions()  # the 2,2,4-VC design Figure 8 expands
    turnset = extract_turns(design)

    checks: list[Check] = [
        check_eq("VC budget (X, Y, Z)", {"X": 2, "Y": 2, "Z": 4}, vc_requirements(design)),
        check_eq("partitions", 4, len(design)),
    ]

    t1_counts, t2_counts, t3_counts = [], [], []
    for label, turns in turnset.rules.items():
        if label.startswith("Theorem1"):
            t1_counts.append(len(turns))
        elif label.startswith("Theorem2"):
            t2_counts.append(len(turns))
        elif label.startswith("Theorem3"):
            t3_counts.append(len(turns))
    checks.append(check_eq("Theorem-1 turns per partition", [10] * 4, t1_counts))
    checks.append(check_eq("Theorem-2 U-turns per partition", [1] * 4, t2_counts))
    checks.append(check_eq("transitions between partitions", 6, len(t3_counts)))
    checks.append(check_eq("turns per transition", [16] * 6, t3_counts))
    checks.append(check_eq("total turns", 140, len(turnset)))

    verdict = verify_design(design, mesh)
    checks.append(check_true("complete turn set acyclic on 3D mesh", verdict.acyclic))

    data: dict = {"total_turns": len(turnset)}
    if maximality_probe:
        allowed = {(t.src, t.dst) for t in turnset.turns}
        classes = design.all_channels
        additions = [
            Turn(a, b)
            for a, b in product(classes, classes)
            if a != b and (a, b) not in allowed
        ]
        cyclic = 0
        still_acyclic: list[str] = []
        for extra in additions:
            probe = turnset.merged_with(TurnSet({"probe": [extra]}))
            v = verdict_for(build_turn_cdg(mesh, probe, classes))
            if v.acyclic:
                still_acyclic.append(str(extra))
            else:
                cyclic += 1
        data["additions_probed"] = len(additions)
        data["additions_cyclic"] = cyclic
        data["additions_still_acyclic"] = still_acyclic
        # Reproduction nuance: the paper says "adding any more turn creates
        # the possibility of deadlock".  Measured: the vast majority do, but
        # a handful of *descending* 90-degree turns (e.g. X2+ -> Y+) remain
        # individually safe on the concrete mesh — the claim holds for every
        # U-/I-turn and for turn additions taken together, not for each
        # single 90-degree addition.  We check the measured facts.
        surviving_uturns = [
            s
            for s in still_acyclic
            if (t := Turn.parse(s)).src.dim == t.dst.dim and t.src.sign != t.dst.sign
        ]
        checks.append(
            check_true(
                "no added U-turn stays acyclic (Theorem 2 is tight)",
                not surviving_uturns,
                note="survivors are only descending 90-degree/I-turns",
            )
        )
        checks.append(
            check_true(
                "most disallowed turns close a cycle (paper: all)",
                cyclic >= 0.8 * len(additions),
                note=f"{cyclic}/{len(additions)} additions cyclic;"
                f" {len(still_acyclic)} descending 90-degree turns survive",
            )
        )

    text = format_turn_table(turnset)
    return ExperimentResult(
        exp_id="Fig8",
        title="Turn extraction for the 3D (2,2,4)-VC minimal design",
        text=text,
        data=data,
        checks=tuple(checks),
    )
