"""V4 — partial-3D NoC: the §6.3 EbDa design vs Elevator-First, simulated.

The paper claims the partitioned design achieves the same goal as
Elevator-First "with a lower number of VCs while offering a higher degree
of adaptiveness".  Reproduced here: VC budgets (4 vs 5 channel classes per
X/Y/Z set), adaptivity, deadlock freedom under stress for both, and a
latency comparison.
"""

from __future__ import annotations

from repro.analysis import text_table
from repro.core import catalog
from repro.experiments.base import Check, ExperimentResult, check_eq, check_true
from repro.routing import ElevatorFirst, TurnTableRouting, first_candidate
from repro.sim import RunConfig, run_point, uniform
from repro.topology import PartiallyConnected3D


def run(*, cycles: int = 1500, rates: tuple[float, ...] = (0.02, 0.05)) -> ExperimentResult:
    topo = PartiallyConnected3D(4, 4, 2, elevators=[(1, 1), (3, 2)])
    design = catalog.partial3d_partitions()

    ebda = TurnTableRouting(topo, design, label="partial3d-ebda")
    elevator = ElevatorFirst(topo)

    checks: list[Check] = [
        check_eq("EbDa channel classes (lower VC budget)", 8, len(ebda.channel_classes)),
        check_eq("Elevator-First channel classes", 10, len(elevator.channel_classes)),
    ]

    # "Higher degree of adaptiveness": mean number of legal outputs over
    # every reachable routing state.  Elevator-First is deterministic (1.0).
    def mean_branching(routing) -> float:
        total = 0
        states = 0
        for src in topo.nodes:
            for dst in topo.nodes:
                if src == dst:
                    continue
                cands = routing.candidates(src, dst, None)
                total += len(cands)
                states += 1
        return total / states

    ebda_branch = mean_branching(ebda)
    elevator_branch = mean_branching(elevator)
    checks.append(
        check_true(
            "EbDa offers a higher degree of adaptiveness",
            ebda_branch > elevator_branch,
            note=f"mean injection candidates: ebda={ebda_branch:.2f},"
            f" elevator-first={elevator_branch:.2f}",
        )
    )
    checks.append(
        check_eq("Elevator-First is deterministic", 1.0, round(elevator_branch, 6))
    )

    rows = []
    from dataclasses import replace

    base = RunConfig(
        cycles=cycles,
        packet_length=4,
        buffer_depth=4,
        selection=first_candidate,
        watchdog=2000,
        drain=True,
        seed=5,
        pattern=uniform,
    )
    latencies: dict[str, list[float]] = {"ebda": [], "elevator-first": []}
    for rate in rates:
        cfg = replace(base, injection_rate=rate)
        for name, routing in (("ebda", ebda), ("elevator-first", elevator)):
            # fresh routing objects are unnecessary: they are stateless
            result = run_point(topo, routing, cfg)
            latencies[name].append(result.avg_latency)
            rows.append(
                [name, f"{rate:.2f}",
                 f"{result.avg_latency:.1f}" if result.stats.latencies else "n/a",
                 f"{result.throughput:.4f}",
                 "DEADLOCK" if result.deadlocked else "ok"]
            )
            checks.append(
                check_true(
                    f"{name} deadlock-free at rate {rate}",
                    not result.deadlocked
                    and result.stats.packets_delivered == result.stats.packets_injected,
                )
            )

    # Latency is informational: the paper's claim is VC count + adaptivity,
    # not latency.  We only require the EbDa design to stay in the same
    # regime at low load (quasi-minimal detours via farther elevators cost
    # a bounded factor).
    checks.append(
        check_true(
            "EbDa low-load latency within 2x of Elevator-First",
            latencies["ebda"][0] <= latencies["elevator-first"][0] * 2.0,
            note=f"ebda={latencies['ebda']}, elevator={latencies['elevator-first']}",
        )
    )

    return ExperimentResult(
        exp_id="V4-partial3d",
        title="Partial-3D NoC: EbDa partitioning vs Elevator-First",
        text=text_table(["algorithm", "rate", "avg latency", "throughput", "status"], rows),
        data={"latencies": latencies},
        checks=tuple(checks),
    )
