"""Figure 3 — a missing direction breaks the cycle.

The partition {X+, X-, Y-} enables exactly the four 90-degree turns WS,
SE, ES, SW, and its concrete CDG is acyclic; restoring Y+ *into the same
partition* (two complete pairs) makes the CDG cyclic.
"""

from __future__ import annotations

from repro.analysis import compass_turn, text_table
from repro.cdg import build_turn_cdg, verdict_for
from repro.core import Partition, PartitionSequence, channels
from repro.core.extraction import extract_turns, theorem1_turns
from repro.core.turns import TurnSet
from repro.experiments.base import Check, ExperimentResult, check_eq, check_true
from repro.topology import Mesh

PAPER_TURNS = {"WS", "SE", "ES", "SW"}


def run(mesh_size: int = 4) -> ExperimentResult:
    mesh = Mesh(mesh_size, mesh_size)
    partition = Partition.of("X+ X- Y-", name="PA")
    turns = theorem1_turns(partition)
    labels = {compass_turn(t, with_vc=False) for t in turns}

    checks: list[Check] = [
        check_eq("turns of {X+, X-, Y-}", PAPER_TURNS, labels),
    ]

    # Concrete acyclicity of the three-channel partition (with its turns).
    seq = PartitionSequence((partition,))
    verdict = verdict_for(
        build_turn_cdg(mesh, extract_turns(seq), seq.all_channels)
    )
    checks.append(check_true("CDG acyclic without Y+", verdict.acyclic))

    # Negative control: all four channels arbitrarily in one partition.
    bad = Partition.of("X+ X- Y+ Y-", name="BAD")
    bad_turns = TurnSet({"all": theorem1_turns(bad)})
    bad_verdict = verdict_for(build_turn_cdg(mesh, bad_turns, channels("X+ X- Y+ Y-")))
    checks.append(
        check_true(
            "CDG cyclic when Y+ rejoins the partition (two complete pairs)",
            not bad_verdict.acyclic,
        )
    )

    text = text_table(
        ["partition", "90-degree turns", "CDG"],
        [
            ["{X+ X- Y-}", ", ".join(sorted(labels)), "acyclic"],
            ["{X+ X- Y+ Y-}", "(all eight)", "CYCLIC"],
        ],
    )
    return ExperimentResult(
        exp_id="Fig3",
        title="A missing direction breaks the cycle in a partition",
        text=text,
        data={"turns": sorted(labels)},
        checks=tuple(checks),
    )
