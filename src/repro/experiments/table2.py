"""Table 2 — three-partition options with intermediate adaptiveness (§6.1).

Reproduces the four listed options, verifies deadlock freedom, and places
their adaptivity strictly between the deterministic (Table 3) and the
maximally adaptive (Table 1) designs.
"""

from __future__ import annotations

from repro.analysis import adaptivity_report, text_table
from repro.cdg import verify_design
from repro.core import catalog
from repro.experiments.base import Check, ExperimentResult, check_eq, check_true
from repro.routing import TurnTableRouting
from repro.topology import Mesh


def run(mesh_size: int = 4) -> ExperimentResult:
    mesh = Mesh(mesh_size, mesh_size)
    options = catalog.table2_options()
    checks: list[Check] = [check_eq("number of options", 4, len(options))]
    rows = []
    adaptivities = []
    for seq in options:
        verdict = verify_design(seq, mesh)
        routing = TurnTableRouting(mesh, seq)
        rep = adaptivity_report(mesh, routing)
        adaptivities.append(rep.adaptivity)
        rows.append(
            [seq.arrow_notation(), f"{rep.adaptivity:.3f}",
             "acyclic" if verdict.acyclic else "CYCLIC"]
        )
        checks.append(check_true(f"CDG acyclic: {seq.arrow_notation()}", verdict.acyclic))
        checks.append(
            check_true(f"routing connected: {seq.arrow_notation()}", routing.is_connected())
        )

    xy = adaptivity_report(mesh, TurnTableRouting(mesh, catalog.design("xy"))).adaptivity
    maxi = adaptivity_report(
        mesh, TurnTableRouting(mesh, catalog.design("negative-first"))
    ).adaptivity
    checks.append(
        check_true(
            "adaptivity strictly between deterministic and maximal",
            all(xy < a < maxi for a in adaptivities),
            note=f"xy={xy:.3f} < {min(adaptivities):.3f}..{max(adaptivities):.3f} < nf={maxi:.3f}",
        )
    )

    return ExperimentResult(
        exp_id="Table2",
        title="Partitioning options leading to some degree of adaptiveness",
        text=text_table(["partitioning option", "adaptivity", "CDG"], rows),
        data={"adaptivity": adaptivities},
        checks=tuple(checks),
    )
