"""V2 — simulation evidence: EbDa designs never deadlock; the unrestricted
baseline does.

Stress configuration: small buffers, long packets, high injection, uniform
traffic on a 2D mesh.  The unrestricted fully adaptive baseline (cyclic
CDG) deadlocks; every EbDa-derived algorithm and baseline with an acyclic
CDG completes, in both buffer disciplines (EbDa-relaxed multi-packet
buffers and Duato-atomic buffers).

All six trials are independent simulation points expressed as named
routing specs, so the :class:`~repro.sim.parallel.SweepEngine` can fan
them out over worker processes (``jobs``) and serve repeats from its
result cache — the CI cache check drives this experiment twice for
exactly that reason.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis import text_table
from repro.experiments.base import Check, ExperimentResult, check_true
from repro.sim import RunConfig, SweepEngine
from repro.topology import Mesh

#: (display name, routing spec, atomic buffers, expect deadlock).
TRIALS = (
    ("unrestricted-adaptive", "unrestricted-adaptive", False, True),
    ("xy", "xy", False, False),
    ("west-first (native)", "west-first", False, False),
    ("north-last (EbDa)", "ebda:north-last", False, False),
    ("fully-adaptive (EbDa, relaxed buffers)", "ebda-fully-adaptive", False, False),
    # The EbDa-relaxed buffer discipline (multiple packets per buffer) is
    # the paper's point of departure from Duato; both must stay safe.
    ("fully-adaptive (EbDa, atomic buffers)", "ebda-fully-adaptive", True, False),
)


def run(
    mesh_size: int = 4,
    *,
    cycles: int = 3000,
    jobs: int = 1,
    engine: SweepEngine | None = None,
) -> ExperimentResult:
    mesh = Mesh(mesh_size, mesh_size)
    if engine is None:
        engine = SweepEngine(jobs=jobs)
    stress = RunConfig(
        cycles=cycles,
        injection_rate=0.30,
        packet_length=8,
        buffer_depth=2,
        watchdog=300,
        drain=True,
        seed=3,
        pattern="uniform",
    )

    report = engine.run_many(
        (mesh, spec, replace(stress, atomic_buffers=atomic))
        for _name, spec, atomic, _expect in TRIALS
    )

    rows = []
    checks: list[Check] = []
    for (name, _spec, _atomic, expect_deadlock), point in zip(TRIALS, report.points):
        result = point.result
        rows.append(
            [name,
             "DEADLOCK" if result.deadlocked else "completed",
             result.stats.packets_delivered,
             result.stats.packets_injected]
        )
        if expect_deadlock:
            checks.append(check_true(f"{name} deadlocks under stress", result.deadlocked))
        else:
            checks.append(
                check_true(
                    f"{name} deadlock-free under stress",
                    not result.deadlocked
                    and result.stats.packets_delivered == result.stats.packets_injected,
                    note=f"{result.stats.packets_delivered}/{result.stats.packets_injected} delivered",
                )
            )

    return ExperimentResult(
        exp_id="V2-deadlock",
        title="Wormhole stress test: who deadlocks",
        text=text_table(["algorithm", "outcome", "delivered", "injected"], rows),
        data={"sweep": report.to_dict()},
        checks=tuple(checks),
    )
