"""V2 — simulation evidence: EbDa designs never deadlock; the unrestricted
baseline does.

Stress configuration: small buffers, long packets, high injection, uniform
traffic on a 2D mesh.  The unrestricted fully adaptive baseline (cyclic
CDG) deadlocks; every EbDa-derived algorithm and baseline with an acyclic
CDG completes, in both buffer disciplines (EbDa-relaxed multi-packet
buffers and Duato-atomic buffers).
"""

from __future__ import annotations

from repro.analysis import text_table
from repro.core import catalog
from repro.experiments.base import Check, ExperimentResult, check_true
from repro.routing import (
    MinimalFullyAdaptive,
    TurnTableRouting,
    UnrestrictedAdaptive,
    WestFirst,
    xy_routing,
)
from repro.sim import RunConfig, run_point, uniform
from repro.topology import Mesh


def run(mesh_size: int = 4, *, cycles: int = 3000) -> ExperimentResult:
    mesh = Mesh(mesh_size, mesh_size)
    stress = RunConfig(
        cycles=cycles,
        injection_rate=0.30,
        packet_length=8,
        buffer_depth=2,
        watchdog=300,
        drain=True,
        seed=3,
        pattern=uniform,
    )

    rows = []
    checks: list[Check] = []

    def trial(name, routing, config, expect_deadlock: bool):
        result = run_point(mesh, routing, config)
        rows.append(
            [name,
             "DEADLOCK" if result.deadlocked else "completed",
             result.stats.packets_delivered,
             result.stats.packets_injected]
        )
        if expect_deadlock:
            checks.append(check_true(f"{name} deadlocks under stress", result.deadlocked))
        else:
            checks.append(
                check_true(
                    f"{name} deadlock-free under stress",
                    not result.deadlocked
                    and result.stats.packets_delivered == result.stats.packets_injected,
                    note=f"{result.stats.packets_delivered}/{result.stats.packets_injected} delivered",
                )
            )

    trial("unrestricted-adaptive", UnrestrictedAdaptive(mesh), stress, True)
    trial("xy", xy_routing(mesh), stress, False)
    trial("west-first (native)", WestFirst(mesh), stress, False)
    trial(
        "north-last (EbDa)",
        TurnTableRouting(mesh, catalog.north_last(), label="north-last-ebda"),
        stress,
        False,
    )
    trial("fully-adaptive (EbDa, relaxed buffers)", MinimalFullyAdaptive(mesh), stress, False)

    # The EbDa-relaxed buffer discipline (multiple packets per buffer) is
    # the paper's point of departure from Duato; both must stay safe.
    from dataclasses import replace

    atomic = replace(stress, atomic_buffers=True)
    trial("fully-adaptive (EbDa, atomic buffers)", MinimalFullyAdaptive(mesh), atomic, False)

    return ExperimentResult(
        exp_id="V2-deadlock",
        title="Wormhole stress test: who deadlocks",
        text=text_table(["algorithm", "outcome", "delivered", "injected"], rows),
        data={},
        checks=tuple(checks),
    )
