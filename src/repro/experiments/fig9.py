"""Figure 9 — 3D region partitionings: 24 channels vs the 16-channel minimum.

Reproduces: (a) the 8-partition per-region construction with 24 channels;
(b) the 4-partition merged construction with 16 channels and 2,2,4 VCs;
(c) the §5 worked-example alternative with 3,2,3 VCs.  All three are
verified acyclic and operationally fully adaptive on a 3D mesh.
"""

from __future__ import annotations

from repro.analysis import adaptivity_report, text_table
from repro.cdg import verify_design
from repro.core import catalog, min_channels, per_region_construction
from repro.core.minimal import region_assignment, vc_requirements
from repro.experiments.base import Check, ExperimentResult, check_eq, check_true
from repro.routing import TurnTableRouting
from repro.topology import Mesh


def run(mesh_size: int = 3) -> ExperimentResult:
    mesh = Mesh(mesh_size, mesh_size, mesh_size)
    checks: list[Check] = []
    rows = []

    fig9a = per_region_construction(3)
    fig9b = catalog.fig9b_partitions()
    fig9c = catalog.fig9c_partitions()

    specs = [
        ("Fig 9a (8 partitions)", fig9a, 24, None),
        ("Fig 9b (4 partitions)", fig9b, 16, {"X": 2, "Y": 2, "Z": 4}),
        ("Fig 9c (4 partitions)", fig9c, 16, {"X": 3, "Y": 2, "Z": 3}),
    ]
    for name, design, n_channels, vcs in specs:
        checks.append(check_eq(f"{name}: channels", n_channels, design.channel_count))
        if vcs is not None:
            checks.append(check_eq(f"{name}: VC budget", vcs, vc_requirements(design)))
        verdict = verify_design(design, mesh)
        checks.append(check_true(f"{name}: CDG acyclic", verdict.acyclic))
        routing = TurnTableRouting(mesh, design, label=name)
        rep = adaptivity_report(mesh, routing)
        checks.append(check_true(f"{name}: fully adaptive", rep.is_fully_adaptive))
        rows.append([name, len(design), design.channel_count, f"{rep.adaptivity:.3f}"])

    checks.append(check_eq("minimum channel formula N(3)", 16, min_channels(3)))

    # Region coverage of the merged design: each partition serves a
    # neighbouring region pair (e.g. NEU+NED).
    assignment = region_assignment(fig9b, 3)
    checks.append(
        check_true(
            "each Fig 9b partition covers a merged region pair",
            all(len(regions) == 2 for regions in assignment.values()),
            note=str(assignment),
        )
    )

    return ExperimentResult(
        exp_id="Fig9",
        title="3D partitionings: 24 channels vs the 16-channel minimum",
        text=text_table(["design", "partitions", "channels", "adaptivity"], rows),
        data={"assignment": assignment},
        checks=tuple(checks),
    )
