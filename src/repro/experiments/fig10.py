"""Figure 10 — the Odd-Even turn model and its partitioning (§6.2).

Reproduces: Rule 1 / Rule 2 compliance of the native Odd-Even router
(no EN/ES turns at even columns, no NW/SW turns at odd columns), checked
over every reachable routing state; deadlock freedom of both the native
algorithm and the EbDa partitioning with column-parity classes; and the
paper's adaptivity comparison with west-first.
"""

from __future__ import annotations

from repro.analysis import adaptivity_report, text_table
from repro.cdg import verify_design, verify_routing
from repro.core import catalog
from repro.experiments.base import Check, ExperimentResult, check_eq, check_true
from repro.routing import OddEven, WestFirst
from repro.topology import Mesh, column_parity


def _rule_violations(mesh: Mesh) -> list[str]:
    """Walk every reachable routing state; collect Rule 1/2 violations."""
    routing = OddEven(mesh)
    violations: list[str] = []
    for src in mesh.nodes:
        for dst in mesh.nodes:
            if src == dst:
                continue
            frontier: list[tuple] = [(src, None)]
            seen = set()
            while frontier:
                cur, in_ch = frontier.pop()
                for nxt, ch in routing.candidates(cur, dst, in_ch):
                    if in_ch is not None:
                        even_col = cur[0] % 2 == 0
                        # Rule 1: EN/ES at even columns
                        if (
                            even_col
                            and in_ch.dim == 0 and in_ch.sign == +1
                            and ch.dim == 1
                        ):
                            violations.append(f"EN/ES at even column {cur}")
                        # Rule 2: NW/SW at odd columns
                        if (
                            not even_col
                            and in_ch.dim == 1
                            and ch.dim == 0 and ch.sign == -1
                        ):
                            violations.append(f"NW/SW at odd column {cur}")
                    state = (nxt, ch)
                    if state not in seen:
                        seen.add(state)
                        frontier.append((nxt, ch))
    return violations


def run(mesh_size: int = 6) -> ExperimentResult:
    mesh = Mesh(mesh_size, mesh_size)
    checks: list[Check] = []

    violations = _rule_violations(mesh)
    checks.append(
        check_eq("Rule 1/2 violations over all reachable states", [], violations)
    )

    native = OddEven(mesh)
    checks.append(
        check_true("native Odd-Even CDG acyclic", verify_routing(native, mesh).acyclic)
    )

    design = catalog.odd_even_partitions()
    checks.append(
        check_true(
            "EbDa partitioning CDG acyclic (column-parity classes)",
            verify_design(design, mesh, column_parity).acyclic,
        )
    )

    # "Offering the same level of adaptiveness as west-first": the paper's
    # comparison is about the turn budget — Odd-Even's 12 turns split over
    # even/odd columns give 6 usable turns everywhere, like west-first's 6.
    # Operationally, west-first concentrates its adaptivity (fully adaptive
    # east, deterministic west) while Odd-Even distributes it; we check the
    # turn budget identity and the distribution property.
    from repro.analysis import region_pairs

    oe_rep = adaptivity_report(mesh, native)
    wf_rep = adaptivity_report(mesh, WestFirst(mesh))

    def per_region(routing):
        return {
            name: adaptivity_report(mesh, routing, region_pairs(mesh, signs)).adaptivity
            for name, signs in (
                ("NE", (+1, +1)), ("NW", (-1, +1)), ("SE", (+1, -1)), ("SW", (-1, -1)),
            )
        }

    oe_regions = per_region(native)
    wf_regions = per_region(WestFirst(mesh))
    checks.append(
        check_true(
            "west-first is fully adaptive eastbound, deterministic westbound",
            wf_regions["NE"] == wf_regions["SE"] == 1.0
            and wf_regions["NW"] < 1.0 and wf_regions["SW"] < 1.0,
            note=str({k: round(v, 3) for k, v in wf_regions.items()}),
        )
    )
    checks.append(
        check_true(
            "Odd-Even distributes partial adaptivity over all four regions",
            all(0.0 < a < 1.0 for a in oe_regions.values()),
            note=str({k: round(v, 3) for k, v in oe_regions.items()}),
        )
    )
    checks.append(
        check_true(
            "Odd-Even's least-adaptive region beats west-first's",
            min(oe_regions.values()) >= min(wf_regions.values()),
            note=f"odd-even min={min(oe_regions.values()):.3f},"
            f" west-first min={min(wf_regions.values()):.3f}",
        )
    )

    rows = [
        ["odd-even (native)", f"{oe_rep.adaptivity:.3f}", oe_rep.fully_adaptive_pairs],
        ["west-first", f"{wf_rep.adaptivity:.3f}", wf_rep.fully_adaptive_pairs],
    ]
    return ExperimentResult(
        exp_id="Fig10",
        title="Odd-Even rules and the column-parity partitioning",
        text=text_table(["algorithm", "adaptivity", "fully adaptive pairs"], rows),
        data={"odd_even": oe_rep.adaptivity, "west_first": wf_rep.adaptivity},
        checks=tuple(checks),
    )
