"""V3 — latency/throughput comparison of the derived algorithms.

The EbDa paper evaluates structure, not performance; this experiment adds
the simulation an ISCA reader would expect: average latency vs injection
rate for XY, west-first, Odd-Even and the EbDa minimal fully adaptive
design on a 2D mesh under uniform and transpose traffic.  The expected
*shape* (not absolute numbers): all algorithms agree at low load; under
transpose, adaptive algorithms sustain higher load than deterministic XY.
"""

from __future__ import annotations

from repro.analysis import text_table
from repro.experiments.base import Check, ExperimentResult, check_true
from repro.routing import (
    MinimalFullyAdaptive,
    OddEven,
    WestFirst,
    congestion_aware,
    xy_routing,
)
from repro.sim import RunConfig, run_point, transpose, uniform
from repro.topology import Mesh


def run(
    mesh_size: int = 6,
    *,
    cycles: int = 1500,
    rates: tuple[float, ...] = (0.02, 0.05, 0.08, 0.12),
) -> ExperimentResult:
    mesh = Mesh(mesh_size, mesh_size)
    algorithms = {
        "xy": lambda: xy_routing(mesh),
        "west-first": lambda: WestFirst(mesh),
        "odd-even": lambda: OddEven(mesh),
        "ebda-fully-adaptive": lambda: MinimalFullyAdaptive(mesh),
    }
    base = RunConfig(
        cycles=cycles,
        packet_length=4,
        buffer_depth=4,
        selection=congestion_aware,
        watchdog=2000,
        drain=True,
        seed=11,
    )

    rows = []
    results: dict[str, dict[str, list]] = {}
    for pattern_name, pattern in (("uniform", uniform), ("transpose", transpose)):
        for algo_name, factory in algorithms.items():
            series = []
            for rate in rates:
                from dataclasses import replace

                cfg = replace(base, injection_rate=rate, pattern=pattern)
                result = run_point(mesh, factory(), cfg)
                series.append(result)
                rows.append(
                    [pattern_name, algo_name, f"{rate:.2f}",
                     f"{result.avg_latency:.1f}" if result.stats.latencies else "n/a",
                     f"{result.throughput:.4f}",
                     "DEADLOCK" if result.deadlocked else "ok"]
                )
            results.setdefault(pattern_name, {})[algo_name] = series

    checks: list[Check] = []
    for pattern_name, per_algo in results.items():
        for algo_name, series in per_algo.items():
            checks.append(
                check_true(
                    f"no deadlock: {algo_name} / {pattern_name}",
                    not any(r.deadlocked for r in series),
                )
            )
            checks.append(
                check_true(
                    f"all packets delivered: {algo_name} / {pattern_name}",
                    all(
                        r.stats.packets_delivered == r.stats.packets_injected
                        for r in series
                    ),
                )
            )

    # Shape check: under transpose at the highest rate, the adaptive design
    # should not be slower than deterministic XY (transpose is XY's
    # pathological permutation).
    xy_last = results["transpose"]["xy"][-1]
    ad_last = results["transpose"]["ebda-fully-adaptive"][-1]
    checks.append(
        check_true(
            "adaptive beats or matches XY under transpose at high load",
            ad_last.avg_latency <= xy_last.avg_latency * 1.10,
            note=f"xy={xy_last.avg_latency:.1f}, adaptive={ad_last.avg_latency:.1f} cycles",
        )
    )

    return ExperimentResult(
        exp_id="V3-performance",
        title="Latency vs injection rate: derived algorithms and baselines",
        text=text_table(
            ["pattern", "algorithm", "rate", "avg latency", "throughput", "status"],
            rows,
        ),
        data={},
        checks=tuple(checks),
    )
