"""V3 — latency/throughput comparison of the derived algorithms.

The EbDa paper evaluates structure, not performance; this experiment adds
the simulation an ISCA reader would expect: average latency vs injection
rate for XY, west-first, Odd-Even and the EbDa minimal fully adaptive
design on a 2D mesh under uniform and transpose traffic.  The expected
*shape* (not absolute numbers): all algorithms agree at low load; under
transpose, adaptive algorithms sustain higher load than deterministic XY.

Every (pattern, algorithm) curve goes through the
:class:`~repro.sim.parallel.SweepEngine`: named routing/pattern specs
keep the points picklable, so ``jobs > 1`` fans the whole grid out over
worker processes with bit-identical results.
"""

from __future__ import annotations

from repro.analysis import text_table
from repro.experiments.base import Check, ExperimentResult, check_true
from repro.sim import RunConfig, SweepEngine
from repro.topology import Mesh

#: (display name, routing spec) — named specs, so the sweep is picklable.
ALGORITHMS = (
    ("xy", "xy"),
    ("west-first", "west-first"),
    ("odd-even", "odd-even"),
    ("ebda-fully-adaptive", "ebda-fully-adaptive"),
)


def run(
    mesh_size: int = 6,
    *,
    cycles: int = 1500,
    rates: tuple[float, ...] = (0.02, 0.05, 0.08, 0.12),
    jobs: int = 1,
    engine: SweepEngine | None = None,
) -> ExperimentResult:
    mesh = Mesh(mesh_size, mesh_size)
    if engine is None:
        engine = SweepEngine(jobs=jobs)
    base = RunConfig(
        cycles=cycles,
        packet_length=4,
        buffer_depth=4,
        selection="congestion",
        watchdog=2000,
        drain=True,
        seed=11,
    )

    # One flat point list across the whole (pattern x algorithm x rate)
    # grid — the engine runs it with whatever parallelism it has.
    from dataclasses import replace

    grid = [
        (pattern_name, algo_name, spec, rate)
        for pattern_name in ("uniform", "transpose")
        for algo_name, spec in ALGORITHMS
        for rate in rates
    ]
    report = engine.run_many(
        (mesh, spec, replace(base, injection_rate=rate, pattern=pattern_name))
        for pattern_name, _algo, spec, rate in grid
    )

    rows = []
    results: dict[str, dict[str, list]] = {}
    for (pattern_name, algo_name, _spec, rate), point in zip(grid, report.points):
        result = point.result
        rows.append(
            [pattern_name, algo_name, f"{rate:.2f}",
             f"{result.avg_latency:.1f}" if result.stats.latencies else "n/a",
             f"{result.throughput:.4f}",
             "DEADLOCK" if result.deadlocked else "ok"]
        )
        results.setdefault(pattern_name, {}).setdefault(algo_name, []).append(result)

    checks: list[Check] = []
    for pattern_name, per_algo in results.items():
        for algo_name, series in per_algo.items():
            checks.append(
                check_true(
                    f"no deadlock: {algo_name} / {pattern_name}",
                    not any(r.deadlocked for r in series),
                )
            )
            checks.append(
                check_true(
                    f"all packets delivered: {algo_name} / {pattern_name}",
                    all(
                        r.stats.packets_delivered == r.stats.packets_injected
                        for r in series
                    ),
                )
            )

    # Shape check: under transpose at the highest rate, the adaptive design
    # should not be slower than deterministic XY (transpose is XY's
    # pathological permutation).
    xy_last = results["transpose"]["xy"][-1]
    ad_last = results["transpose"]["ebda-fully-adaptive"][-1]
    checks.append(
        check_true(
            "adaptive beats or matches XY under transpose at high load",
            ad_last.avg_latency <= xy_last.avg_latency * 1.10,
            note=f"xy={xy_last.avg_latency:.1f}, adaptive={ad_last.avg_latency:.1f} cycles",
        )
    )

    return ExperimentResult(
        exp_id="V3-performance",
        title="Latency vs injection rate: derived algorithms and baselines",
        text=text_table(
            ["pattern", "algorithm", "rate", "avg latency", "throughput", "status"],
            rows,
        ),
        data={"sweep": report.to_dict()},
        checks=tuple(checks),
    )
