"""Table 3 — four-partition options yielding deterministic routing (§6.1).

Reproduces the six listed options, verifies deadlock freedom, and shows
the first option (X+ -> Y+ -> X- -> Y-) routes exactly like the classic
XY algorithm (one candidate everywhere, identical hops).
"""

from __future__ import annotations

from repro.analysis import text_table
from repro.cdg import verify_design
from repro.core import catalog
from repro.experiments.base import Check, ExperimentResult, check_eq, check_true
from repro.routing import TurnTableRouting, xy_routing
from repro.topology import Mesh


def _is_deterministic(routing: TurnTableRouting, mesh: Mesh) -> bool:
    """At most one candidate at every reachable routing state."""
    for src in mesh.nodes:
        for dst in mesh.nodes:
            if src == dst:
                continue
            frontier = [(src, None)]
            seen = set()
            while frontier:
                cur, in_ch = frontier.pop()
                cands = routing.candidates(cur, dst, in_ch)
                if len(cands) > 1:
                    return False
                for nxt, ch in cands:
                    if (nxt, ch) not in seen:
                        seen.add((nxt, ch))
                        frontier.append((nxt, ch))
    return True


def run(mesh_size: int = 4) -> ExperimentResult:
    mesh = Mesh(mesh_size, mesh_size)
    options = catalog.table3_options()
    checks: list[Check] = [check_eq("number of options", 6, len(options))]
    rows = []
    for seq in options:
        verdict = verify_design(seq, mesh)
        routing = TurnTableRouting(mesh, seq)
        deterministic = _is_deterministic(routing, mesh)
        rows.append(
            [seq.arrow_notation(),
             "yes" if deterministic else "no",
             "acyclic" if verdict.acyclic else "CYCLIC"]
        )
        checks.append(check_true(f"CDG acyclic: {seq.arrow_notation()}", verdict.acyclic))
        checks.append(check_true(f"connected: {seq.arrow_notation()}", routing.is_connected()))
        checks.append(
            check_true(f"deterministic: {seq.arrow_notation()}", deterministic)
        )

    # The X+ -> Y+ -> X- -> Y- style options realise XY routing: compare
    # hop-by-hop with the native dimension-order implementation.
    xy_seq = catalog.design("xy")
    ebda_xy = TurnTableRouting(mesh, xy_seq)
    native_xy = xy_routing(mesh)
    same = True
    for src in mesh.nodes:
        for dst in mesh.nodes:
            if src == dst:
                continue
            a = {(n, (c.dim, c.sign)) for n, c in ebda_xy.candidates(src, dst, None)}
            b = {(n, (c.dim, c.sign)) for n, c in native_xy.candidates(src, dst, None)}
            if a != b:
                same = False
    checks.append(check_true("EbDa XY design equals native XY routing", same))

    return ExperimentResult(
        exp_id="Table3",
        title="Partitioning options leading to deterministic routing",
        text=text_table(["partitioning option", "deterministic", "CDG"], rows),
        data={"options": [s.arrow_notation() for s in options]},
        checks=tuple(checks),
    )
