"""E6 — planar-adaptive routing (Chien & Kim [2], cited in §2).

One of the classic adaptive algorithms "developed upon Dally's theory"
the paper's related work names.  The EbDa rendering is a chain of 2D
negative-first sub-designs (one per plane), which makes its deadlock
freedom a direct Theorem 1+3 corollary instead of a plane-by-plane case
analysis.  Reproduced: the channel-cost / adaptivity trade of the three
design points in 3D:

    deterministic XYZ (6 channels)  <  planar (8)  <  fully adaptive (16)
"""

from __future__ import annotations

from repro.analysis import adaptivity_report, text_table
from repro.cdg import verify_design
from repro.core import min_channels, minimal_fully_adaptive
from repro.core.planar import planar_adaptive_design, planar_channel_count
from repro.experiments.base import Check, ExperimentResult, check_eq, check_true
from repro.routing import TurnTableRouting
from repro.sim import RunConfig, run_point
from repro.topology import Mesh


def run(mesh_size: int = 3, *, cycles: int = 800, rate: float = 0.05) -> ExperimentResult:
    mesh = Mesh(mesh_size, mesh_size, mesh_size)
    from repro.core import PartitionSequence

    xyz = PartitionSequence.parse("X+ -> X- -> Y+ -> Y- -> Z+ -> Z-")
    designs = {
        "XYZ (deterministic)": xyz,
        "planar-adaptive": planar_adaptive_design(3),
        "fully adaptive": minimal_fully_adaptive(3),
    }

    checks: list[Check] = [
        check_eq("planar channel formula 4n-4", [4, 8, 12],
                 [planar_channel_count(n) for n in (2, 3, 4)]),
        check_eq("planar 3D channels", 8, planar_adaptive_design(3).channel_count),
        check_eq("fully adaptive 3D channels", min_channels(3),
                 minimal_fully_adaptive(3).channel_count),
    ]

    rows = []
    adapt: dict[str, float] = {}
    for name, design in designs.items():
        checks.append(check_true(f"CDG acyclic: {name}", verify_design(design, mesh).acyclic))
        routing = TurnTableRouting(mesh, design, label=name)
        checks.append(check_true(f"connected: {name}", routing.is_connected()))
        rep = adaptivity_report(mesh, routing)
        adapt[name] = rep.adaptivity
        result = run_point(
            mesh, routing, RunConfig(cycles=cycles, injection_rate=rate, seed=53)
        )
        checks.append(
            check_true(
                f"traffic clean: {name}",
                not result.deadlocked and result.stats.delivery_ratio == 1.0,
            )
        )
        rows.append(
            [name, design.channel_count, f"{rep.adaptivity:.3f}",
             f"{result.avg_latency:.1f}"]
        )

    checks.append(
        check_true(
            "adaptivity strictly ordered by channel budget",
            adapt["XYZ (deterministic)"]
            < adapt["planar-adaptive"]
            < adapt["fully adaptive"] == 1.0,
            note={k: round(v, 3) for k, v in adapt.items()},
        )
    )

    # The planar design's structure: every partition is pair-free, so its
    # deadlock freedom needs only the trivial side of Theorem 1.
    checks.append(
        check_true(
            "all planar partitions pair-free (Theorem 1 trivial)",
            all(p.pair_count == 0 for p in planar_adaptive_design(3)),
        )
    )

    return ExperimentResult(
        exp_id="E6-planar",
        title="Planar-adaptive routing: the 4n-4 channel design point",
        text=text_table(["design", "channels", "adaptivity", "latency"], rows),
        data={"adaptivity": adapt},
        checks=tuple(checks),
    )
