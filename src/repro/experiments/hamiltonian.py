"""§6.2 (second part) — the Hamiltonian-path strategy via partitioning.

The strategy traces the mesh row by row along a Hamiltonian path.  The
paper's partitioning ``PA = {Xe+ Xo- Y+}``, ``PB = {Xe- Xo+ Y-}`` (X
channels classed by row parity) allows twelve 90-degree turns including
all eight the Hamiltonian-path strategy uses.
"""

from __future__ import annotations

from repro.analysis import compass_channel, text_table
from repro.cdg import verify_design
from repro.core import TurnKind, catalog, extract_turns
from repro.experiments.base import Check, ExperimentResult, check_eq, check_true
from repro.routing import TurnTableRouting
from repro.topology import Mesh, row_parity


def _label(ch) -> str:
    return compass_channel(ch, with_vc=False)


def run(mesh_size: int = 6) -> ExperimentResult:
    mesh = Mesh(mesh_size, mesh_size)
    design = catalog.hamiltonian_partitions()
    turnset = extract_turns(design)
    deg90 = {_label(t.src) + _label(t.dst) for t in turnset.of_kind(TurnKind.DEGREE90)}

    checks: list[Check] = [
        check_eq("twelve 90-degree turns", 12, len(deg90)),
    ]

    # The eight turns the Hamiltonian-path (dual-path) strategy uses: the
    # up-path snakes east along even rows / west along odd rows going north;
    # the down-path mirrors it going south.
    hamiltonian_turns = {
        "EeN", "NWo",   # up-path: east on even row, turn north, turn west on odd row
        "WoN", "NEe",   # up-path continued: west on odd row -> north -> east on even
        "EoS", "SWe",   # down-path: east on odd row -> south -> west on even row
        "WeS", "SEo",   # down-path continued
    }
    checks.append(
        check_true(
            "the eight Hamiltonian-path turns are allowed",
            hamiltonian_turns <= deg90,
            note=f"missing: {sorted(hamiltonian_turns - deg90)}",
        )
    )

    verdict = verify_design(design, mesh, row_parity)
    checks.append(check_true("CDG acyclic (row-parity classes)", verdict.acyclic))

    routing = TurnTableRouting(mesh, design, row_parity, label="hamiltonian")
    checks.append(check_true("routing connected", routing.is_connected()))

    return ExperimentResult(
        exp_id="S6.2-Hamiltonian",
        title="Hamiltonian-path strategy via row-parity partitioning",
        text=text_table(
            ["group", "turns"],
            [["all 90-degree", ", ".join(sorted(deg90))]],
        ),
        data={"deg90": sorted(deg90)},
        checks=tuple(checks),
    )
