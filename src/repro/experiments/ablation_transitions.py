"""A2 — transition-scope ablation: all ascending vs consecutive-only.

Theorem 3's corollary allows transitions between partitions "in any
ascending order"; a designer may restrict to *consecutive* partitions to
shrink the turn table.  This ablation quantifies the cost: fewer turns,
(weakly) fewer routable minimal paths, but identical deadlock freedom.
"""

from __future__ import annotations

from repro.analysis import adaptivity_report, text_table
from repro.cdg import verify_design
from repro.core import catalog, extract_turns
from repro.experiments.base import Check, ExperimentResult, check_true
from repro.routing import TurnTableRouting
from repro.topology import Mesh

DESIGNS = ("xy", "partially-adaptive", "fig9c")


def run(mesh_size: int = 4) -> ExperimentResult:
    checks: list[Check] = []
    rows = []
    for name in DESIGNS:
        design = catalog.design(name)
        n_dims = max(c.dim for c in design.all_channels) + 1
        mesh = Mesh(*([mesh_size] * 2)) if n_dims == 2 else Mesh(3, 3, 3)

        turns_all = extract_turns(design, transitions="all")
        turns_consec = extract_turns(design, transitions="consecutive")
        checks.append(
            check_true(
                f"consecutive turn set is a strict subset ({name})",
                turns_consec.turns < turns_all.turns
                if len(design) > 2
                else turns_consec.turns <= turns_all.turns,
                note=f"{len(turns_consec)} vs {len(turns_all)} turns",
            )
        )
        for mode in ("all", "consecutive"):
            checks.append(
                check_true(
                    f"acyclic with transitions={mode} ({name})",
                    verify_design(design, mesh, transitions=mode).acyclic,
                )
            )

        r_all = TurnTableRouting(mesh, design, transitions="all")
        r_consec = TurnTableRouting(mesh, design, transitions="consecutive")
        a_all = adaptivity_report(mesh, r_all)
        connected = r_consec.is_connected()
        a_consec = (
            adaptivity_report(mesh, r_consec) if connected else None
        )
        rows.append(
            [name, len(turns_all), len(turns_consec),
             f"{a_all.adaptivity:.3f}",
             f"{a_consec.adaptivity:.3f}" if a_consec else "disconnected"]
        )
        if a_consec is not None:
            checks.append(
                check_true(
                    f"consecutive adaptivity <= all ({name})",
                    a_consec.adaptivity <= a_all.adaptivity + 1e-9,
                )
            )

    return ExperimentResult(
        exp_id="A2-transitions",
        title="Transition-scope ablation: all ascending vs consecutive",
        text=text_table(
            ["design", "turns (all)", "turns (consec)", "adaptivity (all)",
             "adaptivity (consec)"],
            rows,
        ),
        data={"rows": rows},
        checks=tuple(checks),
    )
