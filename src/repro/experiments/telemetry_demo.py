"""V8 — telemetry: metered simulation, exact accounting, deadlock forensics.

Two trials exercise the observability layer end to end:

1. A healthy metered run (west-first on a 4x4 mesh).  The per-channel
   cumulative counters must satisfy the conservation identity — every
   flit the simulator moved is either still buffered on some wire or was
   delivered, so ``sum(channel flits) == flit_moves - flits_delivered``
   exactly — and the heatmap rollup must be keyed by the EbDa partitions
   of the west-first design.

2. The crafted 2x2 clockwise-ring deadlock (four 4-flit worms, 2-slot
   buffers: a guaranteed stable 4-cycle).  The forensics snapshot must
   name all four ring wires as witness channels and all four worms as
   blocked packets, each with a non-empty trace tail.
"""

from __future__ import annotations

from repro.core import Channel, catalog
from repro.experiments.base import Check, ExperimentResult, check_eq, check_true
from repro.routing import RoutingFunction, TurnTableRouting
from repro.sim import (
    MetricsCollector,
    NetworkSimulator,
    RunConfig,
    ScriptedTraffic,
    Trace,
    run_point,
)
from repro.topology import Mesh


class _RingRouting(RoutingFunction):
    """Deliberately deadlock-prone: every packet rides the clockwise ring
    (0,0) -> (1,0) -> (1,1) -> (0,1) -> (0,0) on a 2x2 mesh, one channel
    per ring hop; the channel dependency graph is a single 4-cycle."""

    _NEXT = {
        (0, 0): ((1, 0), Channel(0, +1)),
        (1, 0): ((1, 1), Channel(1, +1)),
        (1, 1): ((0, 1), Channel(0, -1)),
        (0, 1): ((0, 0), Channel(1, -1)),
    }

    @property
    def channel_classes(self):
        return (
            Channel(0, +1),
            Channel(1, +1),
            Channel(0, -1),
            Channel(1, -1),
        )

    def candidates(self, cur, dst, in_channel):
        if cur == dst:
            return []
        return [self._NEXT[cur]]


def _metered_trial(mesh_size: int, cycles: int) -> tuple[list[Check], dict, list]:
    mesh = Mesh(mesh_size, mesh_size)
    design = catalog.design("west-first")
    routing = TurnTableRouting(mesh, design, label="west-first")
    config = RunConfig(
        cycles=cycles,
        injection_rate=0.05,
        packet_length=4,
        seed=7,
        drain=True,
        metrics=True,
        sample_every=100,
    )
    result = run_point(mesh, routing, config)
    stats, collector = result.stats, result.metrics

    records = collector.records(stats=stats)
    channels = [r for r in records if r.get("record") == "channel"]
    carried = sum(c["flits"] for c in channels)
    in_network = stats.flit_moves - stats.flits_delivered

    partitions = {p.name for p in design.partitions}
    heatmap = collector.heatmap()

    checks = [
        check_true(
            "metered run completes cleanly",
            not stats.deadlocked and stats.delivery_ratio == 1.0,
            note=f"{stats.packets_delivered}/{stats.packets_injected} delivered",
        ),
        check_true(
            "sampling cadence honoured",
            collector.samples_taken >= cycles // config.sample_every,
            note=f"{collector.samples_taken} samples",
        ),
        check_eq(
            "flit conservation: channel counters vs. simulator stats",
            in_network,
            carried,
            note=f"{carried} flits across {len(channels)} channels",
        ),
        check_eq(
            "heatmap rollup keyed by EbDa partitions", partitions, set(heatmap)
        ),
        check_true(
            "no forensics on a healthy run", collector.forensics is None
        ),
    ]
    rows = [
        ["healthy west-first",
         f"{collector.samples_taken} samples",
         f"{carried} flits carried",
         "conserved" if carried == in_network else "MISMATCH"]
    ]
    return checks, {"summary": collector.summary_dict()}, rows


def _forensics_trial() -> tuple[list[Check], dict, list]:
    mesh = Mesh(2, 2)
    collector = MetricsCollector(sample_every=10)
    sim = NetworkSimulator(
        mesh, _RingRouting(mesh), buffer_depth=2, watchdog=50,
        tracer=Trace(), metrics=collector,
    )
    script = ScriptedTraffic(
        {
            0: [
                ((0, 0), (1, 1), 4),
                ((1, 0), (0, 1), 4),
                ((1, 1), (0, 0), 4),
                ((0, 1), (1, 0), 4),
            ]
        }
    )
    stats = sim.run(200, script)
    collector.finalize()
    forensics = collector.forensics

    checks = [
        check_true("crafted ring deadlocks", stats.deadlocked),
        check_true("forensics snapshot captured", forensics is not None),
    ]
    rows = []
    if forensics is not None:
        held = {w for wires in forensics.witness_channels for w in wires}
        blocked_pids = {b.pid for b in forensics.blocked}
        checks.extend(
            [
                check_eq(
                    "witness names all four ring wires", 4, len(held)
                ),
                check_eq(
                    "all four worms reported blocked",
                    {0, 1, 2, 3},
                    blocked_pids,
                ),
                check_true(
                    "every blocked packet carries a trace tail",
                    all(b.trace_tail for b in forensics.blocked),
                ),
                check_true(
                    "buffer occupancy snapshot is non-empty",
                    bool(forensics.buffer_occupancy),
                ),
            ]
        )
        rows.append(
            ["crafted 2x2 ring",
             f"deadlock @ cycle {forensics.declared_at}",
             f"{len(held)} witness wires",
             f"{len(forensics.blocked)} worms blocked"]
        )
    payload = {"forensics": forensics.to_dict() if forensics else None}
    return checks, payload, rows


def run(mesh_size: int = 4, *, cycles: int = 1500) -> ExperimentResult:
    from repro.analysis import text_table

    healthy_checks, healthy_data, rows = _metered_trial(mesh_size, cycles)
    forensic_checks, forensic_data, more_rows = _forensics_trial()
    rows.extend(more_rows)

    return ExperimentResult(
        exp_id="V8-telemetry",
        title="Telemetry layer: exact accounting and deadlock forensics",
        text=text_table(["trial", "outcome", "telemetry", "verdict"], rows),
        data={**healthy_data, **forensic_data},
        checks=tuple(healthy_checks + forensic_checks),
    )
