"""Section 2 — combinatorial cost of turn-model verification vs EbDa.

Reproduces the paper's combination counts (16 for 2D, 65,536 with one
extra VC per dimension) and documents the internally inconsistent 3D
figure (the paper writes "29,696 (4^6)"; 4^6 = 4,096).  Contrasts with
the EbDa construction cost, which is polynomial.
"""

from __future__ import annotations

from repro.analysis import text_table
from repro.cdg import abstract_cycles, ebda_design_cost, section2_table, turn_combinations
from repro.experiments.base import Check, ExperimentResult, check_eq, check_true


def run() -> ExperimentResult:
    rows = []
    for row in section2_table():
        rows.append(
            [f"{row.n_dims}D", row.vcs_per_dim, row.cycles,
             f"4^{row.cycles} = {row.combinations:,}", row.paper_value]
        )

    checks: list[Check] = [
        check_eq("2D no VC", 16, turn_combinations(2, 1)),
        check_eq("2D +1 VC/dim", 65_536, turn_combinations(2, 2)),
        check_eq("abstract cycles 3D no VC", 6, abstract_cycles(3, 1)),
        check_eq(
            "3D no VC (formula; paper states 29,696 '(4^6)' — inconsistent)",
            4_096,
            turn_combinations(3, 1),
            note="4^6 = 4,096; we report the formula value",
        ),
        check_true(
            "3D +1 VC/dim exceeds 8 billion (paper: 'more than 8 billion')",
            turn_combinations(3, 2) > 8_000_000_000,
            note=f"4^24 = {turn_combinations(3, 2):,}",
        ),
        check_true(
            "EbDa construction cost is polynomial (partitions, not a search)",
            all(
                ebda_design_cost(n, v) < turn_combinations(n, v)
                for n in (2, 3, 4)
                for v in (1, 2)
            ),
        ),
    ]

    return ExperimentResult(
        exp_id="S2-complexity",
        title="Turn-model verification cost vs EbDa construction",
        text=text_table(
            ["network", "VCs/dim", "abstract cycles", "combinations", "paper"],
            rows,
        ),
        data={"combinations": {(r.n_dims, r.vcs_per_dim): r.combinations for r in section2_table()}},
        checks=tuple(checks),
    )
