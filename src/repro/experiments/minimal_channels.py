"""Section 4 — the minimum-channel formula N = (n+1) * 2^(n-1).

Reproduces the formula values for n = 1..6, builds the construction for
n = 2..4, and verifies each construction is Theorem-compliant, concretely
acyclic, and structurally fully adaptive (every region covered by a single
partition).  Operational full adaptivity is verified on meshes for n = 2, 3
(n = 4 is checked structurally; a 2^4-node-per-side mesh is beyond unit
scale but the construction is dimension-uniform).
"""

from __future__ import annotations

from repro.analysis import adaptivity_report, text_table
from repro.cdg import verify_design
from repro.core import (
    check_sequence,
    covers_all_regions,
    min_channels,
    minimal_fully_adaptive,
)
from repro.experiments.base import Check, ExperimentResult, check_eq, check_true
from repro.routing import TurnTableRouting
from repro.topology import Mesh


def run(max_n: int = 5) -> ExperimentResult:
    checks: list[Check] = [
        check_eq("N(2)", 6, min_channels(2)),
        check_eq("N(3)", 16, min_channels(3)),
        check_eq(
            "formula values n=1..6",
            [2, 6, 16, 40, 96, 224],
            [min_channels(n) for n in range(1, 7)],
        ),
    ]
    rows = []
    for n in range(2, max_n + 1):
        design = minimal_fully_adaptive(n)
        checks.append(
            check_eq(f"construction channel count n={n}", min_channels(n),
                     design.channel_count)
        )
        checks.append(
            check_true(f"Theorem compliance n={n}", check_sequence(design).ok)
        )
        checks.append(
            check_true(
                f"structurally fully adaptive n={n}",
                covers_all_regions(design, n),
            )
        )
        rows.append([n, len(design), design.channel_count, min_channels(n)])

    for n, size in ((2, 4), (3, 3)):
        mesh = Mesh(*([size] * n))
        design = minimal_fully_adaptive(n)
        checks.append(
            check_true(
                f"CDG acyclic on {size}^{n} mesh",
                verify_design(design, mesh).acyclic,
            )
        )
        rep = adaptivity_report(mesh, TurnTableRouting(mesh, design))
        checks.append(
            check_true(f"operationally fully adaptive n={n}", rep.is_fully_adaptive)
        )

    return ExperimentResult(
        exp_id="S4-minimal",
        title="Minimum channels for fully adaptive routing: (n+1) * 2^(n-1)",
        text=text_table(["n", "partitions", "channels", "formula"], rows),
        data={"formula": [min_channels(n) for n in range(1, 7)]},
        checks=tuple(checks),
    )
