"""E5 — dragonfly case study (the paper's declared future work).

§3.1 names dragonflies as future work.  Minimal dragonfly routing with
per-leg VCs is EbDa's consecutive-order discipline over channel classes
(L1 -> G -> L2); this experiment verifies it and demonstrates the
negative control: with a single local VC the class order collapses and
the concrete CDG exhibits the classic cross-group l-g-l dependency cycle.

Also reproduced: the Valiant crossover.  Randomised indirect routing is a
*five*-partition ordering (L1 -> G1 -> L2 -> G2 -> L3), pays double hops
at low load, and wins decisively under adversarial group-shift traffic
that funnels a whole group through one global link.
"""

from __future__ import annotations

import random

from repro.analysis import text_table
from repro.cdg import verify_routing
from repro.experiments.base import Check, ExperimentResult, check_eq, check_true
from repro.routing.dragonfly import (
    DragonflyRouting,
    DragonflySingleVC,
    DragonflyValiant,
    dragonfly_rule,
)
from repro.sim import NetworkSimulator, TrafficConfig, TrafficGenerator
from repro.topology.dragonfly import GLOBAL_DIM, Dragonfly


def group_shift_pattern(groups: int):
    """Adversarial permutation: router (g, r) -> (g+1 mod groups, r)."""

    def pattern(src, nodes, rng):
        return ((src[0] + 1) % groups, src[1])

    return pattern


def _simulate(topo, routing, pattern, rate, cycles, seed=13):
    sim = NetworkSimulator(topo, routing, dragonfly_rule, buffer_depth=4, watchdog=4000)
    traffic = TrafficGenerator(
        topo,
        TrafficConfig(injection_rate=rate, packet_length=4, pattern=pattern, seed=seed),
    )
    rng = random.Random(seed + 1)
    for cycle in range(cycles):
        new = traffic.packets_for_cycle(cycle)
        if isinstance(routing, DragonflyValiant):
            for p in new:
                routing.prepare(p, rng)
        sim.step(new)
        if sim.stats.deadlocked:
            break
    while not sim.is_idle() and not sim.stats.deadlocked:
        sim.step()
    return sim.stats


def run(groups: int = 5, *, cycles: int = 1000, rate: float = 0.06) -> ExperimentResult:
    topo = Dragonfly(groups=groups)
    checks: list[Check] = []
    rows = []

    n_global = sum(1 for l in topo.links if l.dim == GLOBAL_DIM)
    checks.append(
        check_eq(
            "one global link per group pair (both directions)",
            groups * (groups - 1),
            n_global,
        )
    )

    routing = DragonflyRouting(topo)
    verdict = verify_routing(routing, topo, dragonfly_rule)
    rows.append(["L1->G->L2 routing CDG", str(verdict)])
    checks.append(check_true("class-ordered routing acyclic", verdict.acyclic))

    connected = all(
        routing.candidates(s, d, None) for s in topo.nodes for d in topo.nodes if s != d
    )
    checks.append(check_true("all pairs routable", connected))

    single = verify_routing(DragonflySingleVC(topo), topo, dragonfly_rule)
    rows.append(["single-VC control CDG", str(single)])
    checks.append(
        check_true(
            "single local VC is cyclic (cross-group l-g-l cycle)",
            not single.acyclic,
        )
    )

    max_hops = max(
        topo.distance(s, d) for s in topo.nodes for d in topo.nodes
    )
    checks.append(check_eq("minimal diameter (l-g-l)", 3, max_hops))

    sim = NetworkSimulator(topo, routing, dragonfly_rule, buffer_depth=4, watchdog=3000)
    traffic = TrafficGenerator(
        topo, TrafficConfig(injection_rate=rate, packet_length=4, seed=43)
    )
    stats = sim.run(cycles, traffic, drain=True)
    rows.append(
        ["simulation",
         f"lat={stats.avg_total_latency:.1f},"
         f" delivered={stats.packets_delivered}/{stats.packets_injected}"]
    )
    checks.append(
        check_true(
            "no deadlock, all delivered",
            not stats.deadlocked and stats.delivery_ratio == 1.0,
        )
    )

    # Valiant: five ordered classes, verified, and the load-balance
    # crossover under adversarial group-shift traffic.
    valiant_verdict = verify_routing(DragonflyValiant(topo), topo, dragonfly_rule)
    rows.append(["Valiant L1->G1->L2->G2->L3 CDG", str(valiant_verdict)])
    checks.append(check_true("Valiant five-class routing acyclic", valiant_verdict.acyclic))

    shift = group_shift_pattern(groups)
    # Under group-shift, all of a group's cross traffic ("a" routers, 4-flit
    # packets) funnels through one global link under minimal routing; pick
    # rates straddling that link's capacity so the crossover is observable
    # at any topology scale.
    a = topo.routers_per_group
    low_rate = round(0.5 / (a * 4), 4)
    stress_rate = round(1.5 / (a * 4), 4)
    results: dict[tuple[str, float], float] = {}
    for adv_rate in (low_rate, stress_rate):
        for name, factory in (("minimal", DragonflyRouting), ("valiant", DragonflyValiant)):
            stats = _simulate(topo, factory(topo), shift, adv_rate, cycles)
            results[(name, adv_rate)] = stats.avg_total_latency
            rows.append(
                [f"group-shift {name} @ {adv_rate:.3f}",
                 f"lat={stats.avg_total_latency:.1f},"
                 f" delivered={stats.packets_delivered}/{stats.packets_injected}"]
            )
            checks.append(
                check_true(
                    f"group-shift {name} @ {adv_rate:.3f}: deadlock-free, all delivered",
                    not stats.deadlocked and stats.delivery_ratio == 1.0,
                )
            )
    checks.append(
        check_true(
            "Valiant crossover: minimal wins at low load, Valiant under stress",
            results[("minimal", low_rate)] <= results[("valiant", low_rate)]
            and results[("valiant", stress_rate)] < results[("minimal", stress_rate)],
            note={k: round(v, 1) for k, v in results.items()},
        )
    )

    return ExperimentResult(
        exp_id="E5-dragonfly",
        title="Dragonfly (future work): class-ordered VCs as partitions",
        text=text_table(["item", "result"], rows),
        data={},
        checks=tuple(checks),
    )
