"""Figures 1 and 2 — the definitional objects, exercised.

These figures define the vocabulary rather than report results; the
experiment instantiates every pictured object and checks the library
agrees with each caption:

* Fig 1(a) ``X*`` = two disjoint channels ``X+``/``X-``;
* Fig 1(b) a partition may mix dimensions/directions arbitrarily;
* Fig 1(c) an X-pair; (d) a pair across VC numbers (``X2+`` with ``X1-``);
* Fig 1(e) I-turn ``X1+ -> X2+``; (f) U-turn ``X1+ -> X-``;
* Fig 2(a-d) the four disjointness forms: different dimensions, opposite
  directions, different VC numbers, different columns/rows.
"""

from __future__ import annotations

from repro.analysis import text_table
from repro.core import Channel, Partition, TurnKind, channels, parse_star, turn
from repro.experiments.base import Check, ExperimentResult, check_eq, check_true
from repro.topology import Mesh, column_parity, wires_for


def run() -> ExperimentResult:
    checks: list[Check] = []
    rows = []

    # Fig 1(a): the star notation and channel disjointness.
    pos, neg = parse_star("X*")
    rows.append(["Fig 1a", f"X* = {{{pos}, {neg}}}"])
    checks.append(check_eq("X* expands to X+ and X-", (Channel.parse("X+"), Channel.parse("X-")), (pos, neg)))
    checks.append(check_true("X+ and X- are distinct objects", pos != neg))

    # Fig 1(b): a partition covering X+, X-, Y+, Z- in a 3D network.
    part = Partition.of("X+ X- Y+ Z-")
    rows.append(["Fig 1b", f"partition {part} (pairs: {part.pair_count})"])
    checks.append(check_eq("Fig 1b partition has one complete pair", 1, part.pair_count))

    # Fig 1(c)/(d): pairs, including across VC numbers.
    checks.append(
        check_true("Fig 1c: X+ pairs with X-", Channel.parse("X+").forms_pair_with(Channel.parse("X-")))
    )
    checks.append(
        check_true(
            "Fig 1d: X2+ pairs with X1- (VC numbers differ)",
            Channel.parse("X2+").forms_pair_with(Channel.parse("X-")),
        )
    )
    rows.append(["Fig 1c/d", "pairs form regardless of VC numbers"])

    # Fig 1(e)/(f): turn kinds.
    checks.append(check_eq("Fig 1e: X1+->X2+ is an I-turn", TurnKind.ITURN, turn("X+", "X2+").kind))
    checks.append(check_eq("Fig 1f: X1+->X- is a U-turn", TurnKind.UTURN, turn("X+", "X-").kind))
    rows.append(["Fig 1e/f", "I-turn = same direction; U-turn = opposite"])

    # Fig 2: the four disjointness forms, as partition disjointness.
    forms = [
        ("different dimensions", "X+", "Y+"),
        ("opposite directions", "X+", "X-"),
        ("different VC numbers", "X1+", "X2+"),
        ("different columns", "Y+@e", "Y+@o"),
    ]
    for label, a, b in forms:
        disjoint = Partition.of(a).is_disjoint_from(Partition.of(b))
        rows.append([f"Fig 2 ({label})", f"{a} vs {b}: disjoint={disjoint}"])
        checks.append(check_true(f"Fig 2: {label} are disjoint", disjoint))

    # Fig 2(d) concretely: even/odd column classes instantiate on disjoint
    # link sets of a real mesh.
    mesh = Mesh(4, 4)
    even = {w.link for w in wires_for(mesh, channels("Y+@e"), column_parity)}
    odd = {w.link for w in wires_for(mesh, channels("Y+@o"), column_parity)}
    checks.append(check_true("even/odd column wires share no link", not (even & odd)))
    checks.append(
        check_eq(
            "together they cover every northbound link",
            sum(1 for l in mesh.links if l.dim == 1 and l.sign == +1),
            len(even | odd),
        )
    )

    return ExperimentResult(
        exp_id="Fig1-2",
        title="Definitions instantiated: channels, pairs, turns, disjointness",
        text=text_table(["figure", "demonstration"], rows),
        data={},
        checks=tuple(checks),
    )
