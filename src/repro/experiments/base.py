"""Common experiment harness types.

Every table/figure of the paper has one module here exposing ``run()``,
which returns an :class:`ExperimentResult`:

* ``text`` — the regenerated table/figure content, printable;
* ``data`` — the same content as structured values for tests;
* ``checks`` — named pass/fail comparisons against the paper's claims.

Benchmarks time ``run()`` and print ``text``; EXPERIMENTS.md records the
check outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping


@dataclass(frozen=True)
class Check:
    """One paper-vs-measured comparison."""

    name: str
    expected: object
    measured: object
    passed: bool
    note: str = ""

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        extra = f"  ({self.note})" if self.note else ""
        return f"[{mark}] {self.name}: paper={self.expected!r} measured={self.measured!r}{extra}"


def check_eq(name: str, expected: object, measured: object, note: str = "") -> Check:
    """Equality check."""
    return Check(name, expected, measured, expected == measured, note)


def check_true(name: str, measured: bool, note: str = "") -> Check:
    """Boolean check."""
    return Check(name, True, measured, bool(measured), note)


@dataclass(frozen=True)
class ExperimentResult:
    """Outcome of one reproduced experiment."""

    exp_id: str
    title: str
    text: str
    data: Mapping[str, Any]
    checks: tuple[Check, ...] = ()

    @property
    def passed(self) -> bool:
        """All checks passed."""
        return all(c.passed for c in self.checks)

    def report(self) -> str:
        """Full printable report: banner, content, checks."""
        lines = [f"== {self.exp_id}: {self.title} ==", self.text, ""]
        lines.extend(str(c) for c in self.checks)
        return "\n".join(lines)

    def require(self) -> "ExperimentResult":
        """Raise AssertionError when any check failed (test hook)."""
        failed = [c for c in self.checks if not c.passed]
        if failed:
            raise AssertionError(
                f"{self.exp_id} failed checks:\n" + "\n".join(str(c) for c in failed)
            )
        return self
