"""A3 — selection-policy ablation on the adaptive design.

Selection never affects deadlock freedom (any subset of an acyclic
relation stays acyclic) but drives performance — the difference between
"the DyXY channel structure" and "DyXY the algorithm" is exactly the
congestion-aware policy.  This ablation sweeps the four policies on the
2D minimal fully adaptive design under transpose traffic.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis import text_table
from repro.experiments.base import Check, ExperimentResult, check_true
from repro.routing import (
    MinimalFullyAdaptive,
    congestion_aware,
    first_candidate,
    random_candidate,
    zigzag,
)
from repro.sim import RunConfig, run_point, transpose
from repro.topology import Mesh

POLICIES = {
    "first": first_candidate,
    "random": random_candidate,
    "zigzag": zigzag,
    "congestion": congestion_aware,
}


def run(
    mesh_size: int = 6,
    *,
    cycles: int = 1500,
    rate: float = 0.07,
) -> ExperimentResult:
    mesh = Mesh(mesh_size, mesh_size)
    base = RunConfig(
        cycles=cycles,
        injection_rate=rate,
        packet_length=4,
        buffer_depth=4,
        watchdog=4000,
        drain=True,
        seed=31,
        pattern=transpose,
    )

    rows = []
    checks: list[Check] = []
    latencies: dict[str, float] = {}
    for name, policy in POLICIES.items():
        cfg = replace(base, selection=policy)
        result = run_point(mesh, MinimalFullyAdaptive(mesh), cfg)
        latencies[name] = result.avg_latency
        rows.append(
            [name, f"{result.avg_latency:.1f}", f"{result.throughput:.4f}",
             "DEADLOCK" if result.deadlocked else "ok"]
        )
        checks.append(
            check_true(
                f"{name} deadlock-free (selection cannot break safety)",
                not result.deadlocked and result.stats.delivery_ratio == 1.0,
            )
        )

    checks.append(
        check_true(
            "congestion-aware selection at least matches naive 'first'",
            latencies["congestion"] <= latencies["first"] * 1.05,
            note=f"congestion={latencies['congestion']:.1f},"
            f" first={latencies['first']:.1f} cycles (wins clearly once the"
            " network is loaded; near zero-load they tie)",
        )
    )

    return ExperimentResult(
        exp_id="A3-selection",
        title="Selection-policy ablation (adaptive design, transpose traffic)",
        text=text_table(["policy", "avg latency", "throughput", "status"], rows),
        data={"latencies": latencies},
        checks=tuple(checks),
    )
