"""V9: chaos campaign — Monte-Carlo fault survival under traced workloads.

The EbDa paper proves designs deadlock-free for static networks; the
chaos layer (:mod:`repro.chaos`) measures what the proof cannot —
survival under runtime faults and realistic traffic.  This experiment
runs a small seeded campaign end to end and checks the properties the
subsystem promises:

* **determinism** — running the identical config twice produces
  byte-identical trial records;
* **resume equivalence** — a campaign resumed from a half-filled
  checkpoint emits exactly the records of an uninterrupted run;
* **sanity of the survival curve** — zero-fault trials all deliver
  (the workloads are not themselves a deadlock hazard at this scale),
  and every survival probability is a valid probability.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.chaos import (
    CampaignConfig,
    ChaosCampaign,
    render_survival,
    trial_record_bytes,
)
from repro.experiments.base import ExperimentResult, check_eq, check_true

EXP_ID = "V9-chaos"
TITLE = "Chaos campaign: fault x policy x workload survival (EbDa §7 outlook)"


def run(engine=None) -> ExperimentResult:
    config = CampaignConfig(trials=12, seed=7, mesh=(4, 4), cycles=240)

    first = ChaosCampaign(config, engine=engine).run()
    second = ChaosCampaign(config, engine=engine).run()

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        ckpt = Path(tmp) / "ckpt"
        # Pre-fill half the campaign, as if a previous run was killed.
        half = ChaosCampaign(config, engine=engine, checkpoint_dir=ckpt)
        partial = half.run(budget_s=0)
        resumed = ChaosCampaign(config, engine=engine, checkpoint_dir=ckpt).run()

    trials = first.records
    zero_fault = [t for t in trials if t["n_faults"] == 0]
    survival = first.survival()
    probabilities = [
        point["p_delivered"] for s in survival for point in s["curve"]
    ]

    checks = (
        check_eq(
            "campaign is deterministic (two runs, byte-identical records)",
            True,
            first.trial_bytes == second.trial_bytes,
        ),
        check_true(
            "budget interrupts mid-campaign (partial < full)",
            0 < partial.trials_completed < config.trials,
            note=f"{partial.trials_completed}/{config.trials} before resume",
        ),
        check_eq(
            "checkpoint resume reproduces the uninterrupted run",
            True,
            resumed.trial_bytes == first.trial_bytes,
        ),
        check_true(
            "records round-trip through their canonical bytes",
            all(trial_record_bytes(t) == b
                for t, b in zip(trials, first.trial_bytes)),
        ),
        check_true(
            "zero-fault trials all deliver",
            bool(zero_fault)
            and all(t["outcome"] == "delivered" for t in zero_fault),
            note=f"{len(zero_fault)} zero-fault trial(s)",
        ),
        check_true(
            "survival probabilities are probabilities",
            bool(probabilities)
            and all(0.0 <= p <= 1.0 for p in probabilities),
        ),
    )

    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        text=render_survival(first.all_records()),
        data={
            "config": config.to_dict(),
            "token": config.token(),
            "outcomes": first.outcome_counts(),
            "survival": survival,
            "trials_before_resume": partial.trials_completed,
        },
        checks=checks,
    )
