"""Table 5 — the §6.3 partial-3D design vs Elevator-First.

Reproduces: the thirty 90-degree turns of ``PA[X1+ Y1* Z1+] ->
PB[X1- Y2* Z1-]`` in the paper's grouping (in PA / in PB / by transition),
the VC saving (1,2,1 vs Elevator-First's 2,2,1), deadlock freedom of both
algorithms on a vertically partially connected 3D mesh, and the adaptivity
advantage (Elevator-First is deterministic).
"""

from __future__ import annotations

from repro.analysis import compass_channel, text_table
from repro.cdg import verify_design, verify_routing
from repro.core import TurnKind, catalog, extract_turns
from repro.core.minimal import vc_requirements
from repro.experiments.base import Check, ExperimentResult, check_eq, check_true
from repro.routing import ElevatorFirst, TurnTableRouting, elevator_first_turnset
from repro.topology import PartiallyConnected3D

#: Paper Table 5 (compass letters, VC digits; U/D have a single VC).
PAPER_TURNS = {
    "in PA": {"EN1", "ES1", "EU", "N1E", "N1U", "S1E", "S1U", "UE", "UN1", "US1"},
    "in PB": {"WN2", "WS2", "WD", "N2W", "N2D", "S2W", "S2D", "DW", "DN2", "DS2"},
    "by transition": {"EN2", "ES2", "ED", "N1W", "N1D", "S1W", "S1D", "UW", "UN2", "US2"},
}


def _compass_no_x_z_vc(turn) -> str:
    """Paper style for this table: VC digits on Y only (X and Z have one VC)."""

    def label(ch):
        base = compass_channel(ch, with_vc=False)
        if ch.dim == 1:  # Y carries the VC digit
            base += str(ch.vc)
        return base

    return label(turn.src) + label(turn.dst)


def run() -> ExperimentResult:
    # Elevator placement matters for the EbDa design's connectivity: after a
    # Z- hop (partition PB) a packet can no longer ride X+ (partition PA),
    # so descending packets must finish their eastward travel first — there
    # must be an elevator in the easternmost column.  The paper's companion
    # work [39] handles this via per-region elevator assignment; we place
    # one elevator on the east edge accordingly.
    topo = PartiallyConnected3D(4, 4, 2, elevators=[(1, 1), (3, 2)])
    design = catalog.partial3d_partitions()
    turnset = extract_turns(design)

    measured = {"in PA": set(), "in PB": set(), "by transition": set()}
    for label, turns in turnset.rules.items():
        for t in turns:
            if t.kind != TurnKind.DEGREE90:
                continue
            name = _compass_no_x_z_vc(t)
            if "Theorem1 in PA" in label:
                measured["in PA"].add(name)
            elif "Theorem1 in PB" in label:
                measured["in PB"].add(name)
            elif "Theorem3" in label:
                measured["by transition"].add(name)

    checks: list[Check] = []
    for group, expected in PAPER_TURNS.items():
        checks.append(check_eq(f"90-degree turns {group}", expected, measured[group]))
    total = sum(len(v) for v in measured.values())
    checks.append(check_eq("total 90-degree turns", 30, total))
    checks.append(
        check_eq(
            "Elevator-First turn count (paper baseline)",
            16,
            len(elevator_first_turnset()),
        )
    )

    checks.append(
        check_eq("EbDa design VCs per dimension", {"X": 1, "Y": 2, "Z": 1},
                 vc_requirements(design))
    )

    verdict = verify_design(design, topo)
    checks.append(check_true("EbDa design CDG acyclic on partial 3D", verdict.acyclic))

    routing = TurnTableRouting(topo, design, label="partial3d-ebda")
    checks.append(check_true("EbDa design connected on partial 3D", routing.is_connected()))

    elevator = ElevatorFirst(topo)
    checks.append(
        check_true("Elevator-First CDG acyclic", verify_routing(elevator, topo).acyclic)
    )
    ok = all(
        elevator.candidates(s, d, None) or s == d
        for s in topo.nodes
        for d in topo.nodes
    )
    checks.append(check_true("Elevator-First connected", ok))

    rows = [[g, ", ".join(sorted(v))] for g, v in measured.items()]
    return ExperimentResult(
        exp_id="Table5",
        title="Allowable turns in the partial-3D design (vs Elevator-First)",
        text=text_table(["extracting turns", "90-degree turns"], rows),
        data={"turns": {k: sorted(v) for k, v in measured.items()}, "total": total},
        checks=tuple(checks),
    )
