"""Table 1 — the 12 partitioning options with maximum adaptiveness (§6.1).

Reproduces: the 12 options, verification that each yields an acyclic
concrete CDG, that each allows exactly six 90-degree turns (maximum
adaptiveness for 4 channels), and that the three highlighted entries
produce the same turns as the north-last / west-first / negative-first
turn models.
"""

from __future__ import annotations

from repro.analysis import text_table
from repro.cdg import verify_design
from repro.core import TurnKind, catalog, extract_turns
from repro.experiments.base import Check, ExperimentResult, check_eq, check_true
from repro.routing import NegativeFirst, NorthLast, WestFirst
from repro.topology import Mesh


def _native_turn_pairs(routing_cls, mesh: Mesh) -> frozenset:
    """The (in-dir, out-dir) turns a native turn model actually takes."""
    routing = routing_cls(mesh)
    pairs = set()
    for src in mesh.nodes:
        for dst in mesh.nodes:
            if src == dst:
                continue
            # breadth-first over (node, in_channel) states
            frontier = [(src, None)]
            seen = set()
            while frontier:
                cur, in_ch = frontier.pop()
                for nxt, ch in routing.candidates(cur, dst, in_ch):
                    if in_ch is not None and in_ch.dim != ch.dim:
                        pairs.add((in_ch, ch))
                    state = (nxt, ch)
                    if state not in seen:
                        seen.add(state)
                        frontier.append(state)
    return frozenset(pairs)


def run(mesh_size: int = 4) -> ExperimentResult:
    mesh = Mesh(mesh_size, mesh_size)
    options = catalog.table1_options()
    rows = []
    checks: list[Check] = []
    degree90_counts = []
    for seq in options:
        verdict = verify_design(seq, mesh)
        turnset = extract_turns(seq)
        n90 = len(turnset.of_kind(TurnKind.DEGREE90))
        degree90_counts.append(n90)
        rows.append(
            [seq.arrow_notation(), n90,
             len(turnset.of_kind(TurnKind.UTURN)),
             "acyclic" if verdict.acyclic else "CYCLIC"]
        )
        checks.append(
            check_true(f"CDG acyclic: {seq.arrow_notation()}", verdict.acyclic)
        )

    checks.append(check_eq("number of options", 12, len(options)))
    checks.append(
        check_eq(
            "each option allows six 90-degree turns (max adaptiveness)",
            [6] * 12,
            degree90_counts,
        )
    )

    # "The resulted turns from these partitioning options are the same as
    # those obtained by applying turn models": the family of 12 Table-1
    # turn sets must equal, as a family, the 12 deadlock-free Glass-Ni
    # prohibited-turn combinations.
    from repro.cdg import deadlock_free_candidates

    table1_sets = {
        frozenset((t.src, t.dst) for t in extract_turns(seq).of_kind(TurnKind.DEGREE90))
        for seq in options
    }
    glass_ni_sets = {
        frozenset((t.src, t.dst) for t in cand.allowed_turns)
        for cand in deadlock_free_candidates(mesh)
    }
    checks.append(
        check_eq(
            "the 12 options' turn sets = the 12 deadlock-free turn models",
            sorted(sorted(map(str, s)) for s in glass_ni_sets),
            sorted(sorted(map(str, s)) for s in table1_sets),
        )
    )

    # The highlighted entries regenerate the classic turn models: compare
    # the EbDa 90-degree turn sets with the turns the native algorithms use.
    native = {
        "north-last": NorthLast,
        "west-first": WestFirst,
        "negative-first": NegativeFirst,
    }
    for name, text in catalog.TABLE1_HIGHLIGHTED.items():
        seq = next(s for s in options if s.arrow_notation() == text)
        ebda_pairs = frozenset(
            (t.src, t.dst) for t in extract_turns(seq).of_kind(TurnKind.DEGREE90)
        )
        used = _native_turn_pairs(native[name], mesh)
        checks.append(
            check_true(
                f"{name} turns subset of its Table-1 entry",
                used <= ebda_pairs,
                note=f"native uses {len(used)} of {len(ebda_pairs)} allowed",
            )
        )

    text = text_table(["partitioning option", "90-deg", "U", "CDG"], rows)
    return ExperimentResult(
        exp_id="Table1",
        title="Partitioning options leading to maximum adaptiveness",
        text=text,
        data={"options": [s.arrow_notation() for s in options]},
        checks=tuple(checks),
    )
