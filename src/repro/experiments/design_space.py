"""S5b — the design space EbDa opens (§5.3).

"By rearranging channels inside the sets, increasing the number of
partitions, and tracing the partitions in different consecutive orders,
various partitioning options can be derived."  This experiment counts
them: for several VC budgets it enumerates every Algorithm-2 rotation,
every trace order and every §5.3.2 split of the base design, dedupes
structurally, and verifies *all* of them on a concrete mesh — the
quantitative form of "the number of deadlock-free routing algorithms can
be relatively large", with zero cyclic designs among them.
"""

from __future__ import annotations

from itertools import islice

from repro.analysis import text_table
from repro.cdg import verify_design
from repro.core import (
    arrangement1,
    derive_by_rotation,
    partition_vc_budget,
    sets_from_vc_counts,
    split_partitions,
    trace_orders,
)
from repro.experiments.base import Check, ExperimentResult, check_eq, check_true
from repro.topology import Mesh


def _census(budget: list[int], mesh: Mesh, *, order_limit: int = 24):
    seen: set[tuple] = set()
    designs = []

    def add(seq) -> None:
        key = tuple(p.channel_set for p in seq)
        if key not in seen:
            seen.add(key)
            designs.append(seq)

    base = partition_vc_budget(budget)
    add(base)
    for seq in derive_by_rotation(arrangement1(sets_from_vc_counts(budget))):
        add(seq)
    for seq in islice(trace_orders(base), order_limit):
        add(seq)
    for seq in split_partitions(base):
        add(seq)

    acyclic = sum(1 for seq in designs if verify_design(seq, mesh).acyclic)
    return designs, acyclic


def run(*, order_limit: int = 24) -> ExperimentResult:
    cases = [
        ([1, 1], Mesh(4, 4)),
        ([1, 2], Mesh(4, 4)),
        ([2, 2], Mesh(4, 4)),
        ([1, 1, 1], Mesh(3, 3, 3)),
        ([1, 2, 1], Mesh(3, 3, 3)),
    ]
    checks: list[Check] = []
    rows = []
    total = 0
    for budget, mesh in cases:
        designs, acyclic = _census(budget, mesh, order_limit=order_limit)
        total += len(designs)
        rows.append([str(budget), len(designs), acyclic])
        checks.append(
            check_eq(
                f"every derived design acyclic for budget {budget}",
                len(designs),
                acyclic,
            )
        )
        checks.append(
            check_true(
                f"the space is non-trivial for budget {budget}",
                len(designs) >= 4,
            )
        )
    checks.append(
        check_true(
            "hundreds of distinct verified designs in total",
            total >= 50,
            note=f"{total} distinct designs enumerated and verified",
        )
    )

    return ExperimentResult(
        exp_id="S5b-space",
        title="The derivable design space, enumerated and verified",
        text=text_table(["VC budget", "distinct designs", "acyclic"], rows),
        data={"total": total},
        checks=tuple(checks),
    )
