"""Figure 5 — Theorem 3 in action: PA{X+ X- Y-} -> PB{Y+} is north-last.

Reproduces: the transition adds the EN and WN turns (black in the figure),
the U-turn Y- -> Y+ is enabled while Y+ -> Y- stays prohibited, exactly
one X U-turn is granted, and "taking all directions is not sufficient for
deadlock": all four directions appear yet the CDG is acyclic.
"""

from __future__ import annotations

from repro.analysis import compass_turn, format_turn_table
from repro.cdg import verify_design
from repro.core import TurnKind, catalog, extract_turns
from repro.experiments.base import Check, ExperimentResult, check_eq, check_true
from repro.topology import Mesh


def run(mesh_size: int = 4) -> ExperimentResult:
    mesh = Mesh(mesh_size, mesh_size)
    design = catalog.north_last()
    turnset = extract_turns(design)

    deg90 = {compass_turn(t, with_vc=False) for t in turnset.of_kind(TurnKind.DEGREE90)}
    uturns = {compass_turn(t, with_vc=False) for t in turnset.of_kind(TurnKind.UTURN)}

    checks: list[Check] = [
        check_eq(
            "90-degree turns (PA turns + EN/WN from the transition)",
            {"WS", "SE", "ES", "SW", "EN", "WN"},
            deg90,
        ),
        check_true("U-turn S->N enabled by the transition", "SN" in uturns),
        check_true("U-turn N->S prohibited (no PB->PA transition)", "NS" not in uturns),
        check_eq(
            "exactly one X U-turn granted (Theorem 2)",
            1,
            len({u for u in uturns if u in ("EW", "WE")}),
        ),
    ]

    verdict = verify_design(design, mesh)
    checks.append(
        check_true(
            "all four directions used, yet CDG acyclic (necessary != sufficient)",
            verdict.acyclic,
        )
    )

    return ExperimentResult(
        exp_id="Fig5",
        title="North-last from PA[X+ X- Y-] -> PB[Y+] (Theorem 3 example)",
        text=format_turn_table(turnset, with_vc=False),
        data={"deg90": sorted(deg90), "uturns": sorted(uturns)},
        checks=tuple(checks),
    )
