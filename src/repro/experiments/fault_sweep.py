"""V7 — chaos sweep: runtime faults, rerouting and regressive recovery.

The static V5 experiment counts routable pairs on an already-degraded
mesh; this one exercises the *dynamic* path: links fail mid-simulation,
the routing function is rebuilt over the surviving topology (re-verified
acyclic each time), disturbed packets are aborted and retransmitted, and
a watchdog-triggered victim abort breaks genuine cyclic waits.

Three parts:

1. **Sweep** — fault count x injection rate on a 5x5 mesh under the
   negative-first EbDa design (progressive directions + escape fallback).
   Every point must deliver 100% of its traffic despite the failures.
2. **Partial-3D point** — the same machinery on the §6.3 partially
   connected 3D topology with its EbDa design.
3. **Recovery scenario** — the deadlock-PRONE unrestricted-adaptive
   baseline under heavy load: the watchdog confirms a cyclic wait and
   recovery aborts a victim; a later link failure reconfigures the
   network onto the negative-first design (re-verified acyclic).  The
   run still delivers every packet, and is bit-identical across two
   same-seed executions.
"""

from __future__ import annotations

from repro.analysis import text_table
from repro.experiments.base import Check, ExperimentResult, check_eq, check_true
from repro.routing.fullyadaptive import UnrestrictedAdaptive
from repro.sim import (
    EbdaDesignFactory,
    FaultEvent,
    FaultSchedule,
    NetworkSimulator,
    RecoveryPolicy,
    RunConfig,
    SweepEngine,
    TrafficConfig,
    TrafficGenerator,
)
from repro.topology import Mesh, PartiallyConnected3D

FAULT_COUNTS = (0, 1, 2)
RATES = (0.02, 0.05)


def _ebda_factory(design_name: str) -> EbdaDesignFactory:
    """A picklable escape-capable factory for a catalog design.

    :class:`EbdaDesignFactory` is a frozen value, so fault-sweep points
    carrying it fan out over the engine's worker processes and cache.
    """
    return EbdaDesignFactory(design_name, directions="progressive", fallback="escape")


def _fmt(value: float) -> str:
    return f"{value:.2f}" if value == value else "n/a"  # NaN-safe


def run(
    *, cycles: int = 300, jobs: int = 1, engine: SweepEngine | None = None
) -> ExperimentResult:
    checks: list[Check] = []
    rows = []
    if engine is None:
        engine = SweepEngine(jobs=jobs)

    # Part 1: fault count x injection rate on the 5x5 mesh — one engine
    # fan-out over the whole grid (schedules and factories are picklable).
    mesh = Mesh(5, 5)
    factory = _ebda_factory("negative-first")
    grid = []
    for n_faults in FAULT_COUNTS:
        schedule = FaultSchedule.random(
            mesh, seed=40 + n_faults, n_link_failures=n_faults,
            window=(50, max(51, cycles - 50)), routing_factory=factory,
        )
        for rate in RATES:
            cfg = RunConfig(
                cycles=cycles,
                injection_rate=rate,
                packet_length=4,
                watchdog=300,
                seed=7,
                faults=schedule,
                recovery=RecoveryPolicy(),
                routing_factory=factory,
            )
            grid.append((n_faults, rate, cfg))
    report = engine.run_many((mesh, factory, cfg) for _n, _r, cfg in grid)
    for (n_faults, rate, _cfg), point in zip(grid, report.points):
        stats = point.result.stats
        rows.append(
            ["mesh 5x5", n_faults, f"{rate:.2f}",
             f"{stats.delivery_ratio:.3f}", stats.packets_aborted,
             _fmt(stats.avg_recovery_latency)]
        )
        checks.append(
            check_true(
                f"full delivery with {n_faults} fault(s) at rate {rate}",
                not stats.deadlocked
                and stats.delivery_ratio == 1.0
                and stats.faults_injected == n_faults,
                note=stats.summary(len(mesh.nodes)),
            )
        )

    # Part 2: one link failure on the partially connected 3D topology.
    topo3d = PartiallyConnected3D(4, 4, 2, elevators=[(1, 1), (3, 2)])
    factory3d = _ebda_factory("partial3d")
    schedule3d = FaultSchedule.random(
        topo3d, seed=11, n_link_failures=1,
        window=(50, max(51, cycles - 50)), routing_factory=factory3d,
    )
    cfg3d = RunConfig(
        cycles=cycles,
        injection_rate=0.02,
        packet_length=4,
        watchdog=300,
        seed=7,
        faults=schedule3d,
        recovery=RecoveryPolicy(),
        routing_factory=factory3d,
    )
    result3d = engine.run_point(topo3d, factory3d, cfg3d).result
    rows.append(
        ["partial-3D", 1, "0.02", f"{result3d.stats.delivery_ratio:.3f}",
         result3d.stats.packets_aborted, _fmt(result3d.stats.avg_recovery_latency)]
    )
    checks.append(
        check_true(
            "partial-3D survives a link failure with full delivery",
            not result3d.stats.deadlocked
            and result3d.stats.delivery_ratio == 1.0,
            note=result3d.stats.summary(len(topo3d.nodes)),
        )
    )

    # Part 3: deadlock recovery + fault-triggered reconfiguration.
    def recovery_scenario():
        small = Mesh(4, 4)
        faults = FaultSchedule(
            [FaultEvent(400, "link", link=((1, 1), (2, 1)))], seed=9
        )
        sim = NetworkSimulator(
            small,
            UnrestrictedAdaptive(small),
            watchdog=80,
            seed=3,
            faults=faults,
            recovery=RecoveryPolicy(max_retries=20),
            routing_factory=_ebda_factory("negative-first"),
        )
        traffic = TrafficGenerator(
            small,
            TrafficConfig(injection_rate=0.35, packet_length=6, seed=3),
        )
        stats = sim.run(600, traffic, drain=True)
        return sim, stats

    sim_a, stats_a = recovery_scenario()
    sim_b, stats_b = recovery_scenario()
    rows.append(
        ["recovery 4x4", 1, "0.35", f"{stats_a.delivery_ratio:.3f}",
         stats_a.packets_aborted, _fmt(stats_a.avg_recovery_latency)]
    )
    checks.append(
        check_true(
            "watchdog-confirmed cyclic wait recovered by victim abort",
            stats_a.recovered_deadlocks >= 1 and stats_a.retransmissions >= 1,
            note=f"recovered={stats_a.recovered_deadlocks}"
            f" retx={stats_a.retransmissions}",
        )
    )
    checks.append(
        check_true(
            "degraded design re-verified acyclic after the link failure",
            sim_a.last_reroute_verdict is not None
            and sim_a.last_reroute_verdict.acyclic,
            note=str(sim_a.last_reroute_verdict),
        )
    )
    checks.append(
        check_eq(
            "recovery scenario delivers every packet",
            1.0,
            stats_a.delivery_ratio,
        )
    )
    checks.append(
        check_eq(
            "recovery scenario is deterministic across same-seed runs",
            stats_a.summary(16),
            stats_b.summary(16),
            note=f"routing after reroute: {sim_b.routing.name}",
        )
    )

    return ExperimentResult(
        exp_id="V7-faultsweep",
        title="Chaos sweep: runtime faults, rerouting and regressive recovery",
        text=text_table(
            ["network", "faults", "rate", "delivery", "aborted", "avg rec lat"],
            rows,
        ),
        data={"rows": rows, "sweep": report.to_dict()},
        checks=tuple(checks),
    )
