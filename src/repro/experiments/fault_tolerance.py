"""V5 — rerouting under faults (Theorem 2's motivation).

The paper: "Enabling U-turns is essentially important in fault-tolerant
designs or where rerouting brings an advantage".  This experiment breaks
links in a 5x5 mesh and measures how many (src, dst) pairs each EbDa
design can still route, across three rerouting modes:

* **minimal** — only mesh-minimal moves (no rerouting at all);
* **progressive** — moves that shorten the surviving-graph distance;
* **escape** — when no productive turn-legal move exists, any turn-legal
  move (including the Theorem-2/3 U-/I-turns) that keeps the destination
  reachable.  Livelock-free because the design's concrete CDG is acyclic:
  a turn-legal walk can visit each wire at most once.

Expected shape: escape >= progressive >= minimal for every design, and the
richer the turn set (maximum-adaptiveness designs like negative-first) the
more pairs survive — deterministic XY gains nothing from rerouting because
its turn set admits no detours.
"""

from __future__ import annotations

from repro.analysis import text_table
from repro.cdg import verify_design
from repro.core import catalog
from repro.experiments.base import Check, ExperimentResult, check_true
from repro.routing import TurnTableRouting
from repro.topology import FaultyMesh, Mesh

#: Fault scenarios: failed bidirectional links on a 5x5 mesh.
SCENARIOS = {
    "single fault": [((2, 2), (3, 2))],
    "double fault": [((2, 2), (3, 2)), ((1, 3), (1, 4))],
    "column breach": [((2, 1), (2, 2)), ((3, 1), (3, 2))],
}

DESIGNS = ("negative-first", "north-last", "west-first", "xy")


def _routable_pairs(routing, topo) -> int:
    return sum(
        1
        for src in topo.nodes
        for dst in topo.nodes
        if src != dst and routing.candidates(src, dst, None)
    )


def run() -> ExperimentResult:
    base = Mesh(5, 5)
    total_pairs = len(base.nodes) * (len(base.nodes) - 1)

    checks: list[Check] = []
    rows = []
    escape_by_design: dict[str, list[int]] = {d: [] for d in DESIGNS}
    for scenario, failed in SCENARIOS.items():
        topo = FaultyMesh(base, failed=failed)
        for name in DESIGNS:
            design = catalog.design(name)
            counts = {}
            for mode, kwargs in (
                ("minimal", dict(directions="minimal")),
                ("progressive", dict(directions="progressive")),
                ("escape", dict(directions="progressive", fallback="escape")),
            ):
                routing = TurnTableRouting(topo, design, **kwargs)
                counts[mode] = _routable_pairs(routing, topo)
            escape_by_design[name].append(counts["escape"])
            rows.append(
                [scenario, name, counts["minimal"], counts["progressive"],
                 counts["escape"], total_pairs]
            )
            checks.append(
                check_true(
                    f"escape >= progressive >= minimal ({scenario}, {name})",
                    counts["escape"] >= counts["progressive"] >= counts["minimal"],
                    note=str(counts),
                )
            )
        checks.append(
            check_true(
                f"design stays acyclic on faulty mesh ({scenario})",
                verify_design(catalog.design("negative-first"), topo).acyclic,
            )
        )

    checks.append(
        check_true(
            "escape rerouting strictly helps an adaptive design somewhere",
            any(
                row[4] > row[3]
                for row in rows
                if row[1] != "xy"
            ),
        )
    )
    checks.append(
        check_true(
            "maximum-adaptiveness design (negative-first) beats deterministic XY",
            all(
                nf > xy
                for nf, xy in zip(escape_by_design["negative-first"], escape_by_design["xy"])
            ),
            note=f"negative-first={escape_by_design['negative-first']},"
            f" xy={escape_by_design['xy']}",
        )
    )
    checks.append(
        check_true(
            "XY's turn set admits no detours (escape == minimal)",
            all(
                row[4] == row[2] for row in rows if row[1] == "xy"
            ),
        )
    )

    return ExperimentResult(
        exp_id="V5-faults",
        title="Rerouting under faults: richer turn sets recover more pairs",
        text=text_table(
            ["scenario", "design", "minimal", "progressive", "escape", "pairs"],
            rows,
        ),
        data={"rows": rows},
        checks=tuple(checks),
    )
