"""Section 5 worked example — Algorithm 1 on a (3, 2, 3)-VC 3D network.

The paper traces the procedure by hand and arrives at

    P = {PA[Z1* X1+ Y1+]; PB[Z2* X1- Y2+]; PC[X2* Z3+ Y1-]; PD[X3* Z3- Y2-]}

(the Figure 9(c) set).  This experiment runs the library's Algorithm 1
with the region-balancing selector on the same input and checks it derives
exactly that partitioning; it also exercises Algorithm 2 (rotations) and
the trace-order derivations, verifying every derived design.
"""

from __future__ import annotations

from itertools import islice

from repro.analysis import text_table
from repro.cdg import verify_design
from repro.core import (
    arrangement1,
    catalog,
    derive_by_rotation,
    partition_sets,
    sets_from_vc_counts,
    trace_orders,
)
from repro.experiments.base import Check, ExperimentResult, check_eq, check_true
from repro.topology import Mesh


def run() -> ExperimentResult:
    # X, Y, Z carry 3, 2, 3 VCs; Arrangement 1 puts a 3-pair dimension first.
    sets = arrangement1(sets_from_vc_counts([3, 2, 3]))
    # The paper chooses Z (over the tied X) as Set1; our stable arrangement
    # keeps X first on ties, so reorder to match the worked example.
    sets = sorted(sets, key=lambda s: (-s.pair_count, -s.dim))

    derived = partition_sets(sets)
    expected = catalog.fig9c_partitions()

    checks: list[Check] = [
        check_eq(
            "Algorithm 1 reproduces the worked example (Figure 9c)",
            [p.channel_set for p in expected],
            [p.channel_set for p in derived],
        ),
        check_eq("number of partitions", 4, len(derived)),
    ]

    mesh = Mesh(3, 3, 3)
    checks.append(check_true("derived design acyclic", verify_design(derived, mesh).acyclic))

    # Algorithm 2: every rotation-derived alternative is a valid design.
    alternatives = list(
        islice(derive_by_rotation(sets), 10)
    )
    ok = sum(1 for seq in alternatives if verify_design(seq, mesh).acyclic)
    checks.append(
        check_eq("Algorithm 2 alternatives all acyclic", len(alternatives), ok)
    )

    # §5.3.3: tracing the partitions in different orders stays deadlock-free.
    orders = list(islice(trace_orders(derived), 6))
    ok = sum(1 for seq in orders if verify_design(seq, mesh).acyclic)
    checks.append(check_eq("trace-order variants all acyclic", len(orders), ok))

    rows = [[p.name, " ".join(str(c) for c in p)] for p in derived]
    return ExperimentResult(
        exp_id="S5-algorithm1",
        title="Algorithm 1 worked example: 3,2,3 VCs -> Figure 9(c)",
        text=text_table(["partition", "channels"], rows),
        data={"partitions": [p.channel_set for p in derived]},
        checks=tuple(checks),
    )
