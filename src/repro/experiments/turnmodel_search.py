"""§6.1 / §2 — the Glass-Ni turn-model search, reproduced computationally.

The paper: "out of 16 combinations, 12 are deadlock-free and 3 are unique
if symmetry is taken into account, so-called north-last, west-first, and
negative-first".  This experiment enumerates all 16 prohibited-turn
combinations, verifies each with the concrete CDG, groups the survivors
into symmetry orbits and names them.
"""

from __future__ import annotations

from repro.analysis import text_table
from repro.cdg import (
    all_candidates,
    classify_orbit,
    deadlock_free_candidates,
    is_deadlock_free,
    turn_label,
    unique_turn_models,
)
from repro.experiments.base import ExperimentResult, check_eq
from repro.topology import Mesh


def run(mesh_size: int = 4) -> ExperimentResult:
    mesh = Mesh(mesh_size, mesh_size)
    candidates = all_candidates()
    rows = []
    free = []
    for cand in candidates:
        verdict = is_deadlock_free(cand, mesh)
        rows.append([cand.label(), "deadlock-free" if verdict.acyclic else "CYCLIC"])
        if verdict.acyclic:
            free.append(cand)

    orbits = unique_turn_models(mesh)
    orbit_names = sorted(classify_orbit(o) for o in orbits)

    checks = [
        check_eq("combinations examined", 16, len(candidates)),
        check_eq("deadlock-free combinations", 12, len(free)),
        check_eq("unique models under symmetry", 3, len(orbits)),
        check_eq(
            "the three named models",
            ["negative-first", "north-last", "west-first"],
            orbit_names,
        ),
        check_eq(
            "orbit sizes",
            [4, 4, 4],
            sorted(len(o) for o in orbits),
        ),
    ]

    return ExperimentResult(
        exp_id="S6.1-turnmodels",
        title="Glass-Ni search: 16 combinations -> 12 deadlock-free -> 3 unique",
        text=text_table(["prohibited turns", "verdict"], rows),
        data={"free": [c.label() for c in free], "orbits": orbit_names},
        checks=tuple(checks),
    )
