"""Table 4 — Odd-Even turns recovered by partitioning (§6.2, Figure 10).

Reproduces the table: the 90-degree turns formed inside PA, inside PB and
by the PA->PB transition, in the paper's compass notation, and checks them
against the paper's listing.  Also verifies the design on a concrete mesh
with the column-parity class rule and confirms the highlighted
``N_e E / S_e E``-style transition turns exist while the physically
unusable even<->odd vertical I-turns never instantiate on the mesh.
"""

from __future__ import annotations

from repro.analysis import text_table
from repro.cdg import verify_design
from repro.core import TurnKind, catalog, extract_turns
from repro.experiments.base import Check, ExperimentResult, check_eq, check_true
from repro.routing import OddEven, TurnTableRouting
from repro.topology import Mesh, column_parity

#: Paper Table 4, 90-degree turns (compass letters; e/o = column parity).
PAPER_TURNS = {
    "in PA": {"WNe", "WSe", "NeW", "SeW"},
    "in PB": {"ENo", "ESo", "NoE", "SoE"},
    "by transition": {"WNo", "WSo", "NeE", "SeE"},
}


def run(mesh_size: int = 6) -> ExperimentResult:
    mesh = Mesh(mesh_size, mesh_size)
    design = catalog.odd_even_partitions()
    turnset = extract_turns(design)

    from repro.analysis import compass_turn

    measured = {"in PA": set(), "in PB": set(), "by transition": set()}
    for label, turns in turnset.rules.items():
        for t in turns:
            if t.kind != TurnKind.DEGREE90:
                continue
            name = compass_turn(t, with_vc=False)
            if "Theorem1 in PA" in label:
                measured["in PA"].add(name)
            elif "Theorem1 in PB" in label:
                measured["in PB"].add(name)
            elif "Theorem3" in label:
                measured["by transition"].add(name)

    checks: list[Check] = []
    for group, expected in PAPER_TURNS.items():
        checks.append(check_eq(f"90-degree turns {group}", expected, measured[group]))

    verdict = verify_design(design, mesh, column_parity)
    checks.append(check_true("CDG acyclic with column-parity classes", verdict.acyclic))

    routing = TurnTableRouting(mesh, design, column_parity, label="odd-even-ebda")
    checks.append(check_true("EbDa odd-even design connected", routing.is_connected()))

    # The native algorithm's moves are a subset of the design's legality.
    native = OddEven(mesh)
    subset = True
    for src in mesh.nodes:
        for dst in mesh.nodes:
            if src == dst:
                continue
            for nxt, _ch in native.candidates(src, dst, None):
                if not any(n == nxt for n, _c in routing.candidates(src, dst, None)):
                    subset = False
    checks.append(
        check_true("native Odd-Even injection moves allowed by the design", subset)
    )

    # Total turn count: 12 (the paper compares with west-first's 6).
    total_90 = sum(len(v) for v in measured.values())
    checks.append(check_eq("total 90-degree turns", 12, total_90))

    rows = [[g, ", ".join(sorted(v))] for g, v in measured.items()]
    return ExperimentResult(
        exp_id="Table4",
        title="Allowable turns in Odd-Even via partitioning",
        text=text_table(["extracting turns", "90-degree turns"], rows),
        data={"turns": {k: sorted(v) for k, v in measured.items()}},
        checks=tuple(checks),
    )
