"""E2 — k-ary n-cube case study (Theorem 2's wrap-around remark).

The paper notes that a torus wrap-around channel "can be seen as two
unidirectional channels and two U-turns".  The EbDa rendering is the
dateline design (:mod:`repro.core.torus_designs`): wrap links carry their
own spatial class and the ring is traversed as three consecutively ordered
partitions.  This experiment shows:

* every plain mesh design is **cyclic** on a torus (the ring closes on a
  single channel class — continuation dependencies alone suffice);
* the dateline design is acyclic, connected, and survives tornado traffic
  (the adversarial pattern that loads wrap links) with zero deadlock;
* routes use the wrap links (the design is not silently avoiding them).
"""

from __future__ import annotations

from repro.analysis import text_table
from repro.cdg import verify_design
from repro.core import catalog
from repro.core.torus_designs import dateline_design
from repro.experiments.base import Check, ExperimentResult, check_true
from repro.routing import TurnTableRouting
from repro.sim import NetworkSimulator, TrafficConfig, TrafficGenerator, tornado, uniform
from repro.topology import Torus
from repro.topology.classes import dateline


def run(k: int = 4, *, cycles: int = 1000, rate: float = 0.04) -> ExperimentResult:
    torus = Torus(k, k)
    checks: list[Check] = []
    rows = []

    # Negative control: mesh designs ignore the wrap and must fail.
    for name in ("xy", "north-last", "negative-first"):
        verdict = verify_design(catalog.design(name), torus)
        rows.append([f"{name} (mesh design)", "CYCLIC" if not verdict.acyclic else "acyclic"])
        checks.append(
            check_true(f"plain {name} design cyclic on torus", not verdict.acyclic)
        )

    design = dateline_design(2)
    verdict = verify_design(design, torus, dateline)
    rows.append(["dateline design", "acyclic" if verdict.acyclic else "CYCLIC"])
    checks.append(check_true("dateline design acyclic on torus", verdict.acyclic))

    routing = TurnTableRouting(torus, design, dateline, label="torus-dateline")
    checks.append(check_true("dateline routing connected", routing.is_connected()))

    # Wrap links are genuinely used: some pair's only candidates cross them.
    wrap_used = False
    for src in torus.nodes:
        for dst in torus.nodes:
            if src == dst:
                continue
            for nxt, ch in routing.candidates(src, dst, None):
                if torus.link(src, nxt).is_wraparound:
                    wrap_used = True
    checks.append(check_true("wrap links are used by minimal routes", wrap_used))

    for pattern_name, pattern in (("uniform", uniform), ("tornado", tornado)):
        sim = NetworkSimulator(torus, routing, dateline, buffer_depth=4, watchdog=3000)
        traffic = TrafficGenerator(
            torus,
            TrafficConfig(injection_rate=rate, packet_length=4, pattern=pattern, seed=37),
        )
        stats = sim.run(cycles, traffic, drain=True)
        rows.append(
            [f"simulation ({pattern_name})",
             f"lat={stats.avg_total_latency:.1f},"
             f" delivered={stats.packets_delivered}/{stats.packets_injected}"]
        )
        checks.append(
            check_true(
                f"no deadlock under {pattern_name} traffic",
                not stats.deadlocked and stats.delivery_ratio == 1.0,
            )
        )

    return ExperimentResult(
        exp_id="E2-torus",
        title="k-ary n-cube: the dateline partitioning handles wrap links",
        text=text_table(["item", "result"], rows),
        data={},
        checks=tuple(checks),
    )
