"""A1 — buffer-discipline ablation: EbDa-relaxed vs Duato-atomic.

The paper's second differentiator from Duato's theory: EbDa imposes no
restriction on how many packets share an input buffer.  This ablation
runs the same adaptive design under both disciplines and measures the
cost of atomicity: with atomic buffers a wire stays unallocatable until
it fully drains, wasting buffer slots, so latency at load should be
higher (and never lower) than with relaxed buffers.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis import text_table
from repro.experiments.base import Check, ExperimentResult, check_true
from repro.routing import MinimalFullyAdaptive
from repro.sim import RunConfig, run_point, uniform
from repro.topology import Mesh


def run(
    mesh_size: int = 6,
    *,
    cycles: int = 1500,
    rates: tuple[float, ...] = (0.03, 0.06, 0.09),
) -> ExperimentResult:
    mesh = Mesh(mesh_size, mesh_size)
    base = RunConfig(
        cycles=cycles,
        packet_length=6,
        buffer_depth=3,
        watchdog=4000,
        drain=True,
        seed=23,
        pattern=uniform,
    )

    rows = []
    checks: list[Check] = []
    relaxed_lat, atomic_lat = [], []
    for rate in rates:
        results = {}
        for mode, atomic in (("relaxed", False), ("atomic", True)):
            cfg = replace(base, injection_rate=rate, atomic_buffers=atomic)
            results[mode] = run_point(mesh, MinimalFullyAdaptive(mesh), cfg)
        relaxed_lat.append(results["relaxed"].avg_latency)
        atomic_lat.append(results["atomic"].avg_latency)
        rows.append(
            [f"{rate:.2f}",
             f"{results['relaxed'].avg_latency:.1f}",
             f"{results['atomic'].avg_latency:.1f}",
             f"{results['relaxed'].throughput:.4f}",
             f"{results['atomic'].throughput:.4f}"]
        )
        for mode in ("relaxed", "atomic"):
            checks.append(
                check_true(
                    f"{mode} deadlock-free at rate {rate}",
                    not results[mode].deadlocked
                    and results[mode].stats.delivery_ratio == 1.0,
                )
            )

    checks.append(
        check_true(
            "relaxed buffers never slower at load (paper's WH advantage)",
            all(r <= a * 1.05 for r, a in zip(relaxed_lat, atomic_lat)),
            note=f"relaxed={[f'{x:.1f}' for x in relaxed_lat]},"
            f" atomic={[f'{x:.1f}' for x in atomic_lat]}",
        )
    )
    checks.append(
        check_true(
            "atomicity costs measurable latency at the highest rate",
            atomic_lat[-1] > relaxed_lat[-1],
            note=f"{atomic_lat[-1]:.1f} vs {relaxed_lat[-1]:.1f} cycles",
        )
    )

    return ExperimentResult(
        exp_id="A1-buffers",
        title="Buffer-discipline ablation: EbDa-relaxed vs Duato-atomic",
        text=text_table(
            ["rate", "lat relaxed", "lat atomic", "thr relaxed", "thr atomic"],
            rows,
        ),
        data={"relaxed": relaxed_lat, "atomic": atomic_lat},
        checks=tuple(checks),
    )
