"""E1 — Assumption 1: the theorems hold for WH, VCT and SAF alike.

"Since SAF and VCT are special cases of WH, the proof of deadlock freedom
for WH is also valid for SAF and VCT."  This experiment runs the same
EbDa design under all three switching modes (and the deadlock-prone
control under wormhole) and confirms: identical deadlock freedom, full
delivery, and the textbook latency ordering WH <= VCT <= SAF (cut-through
saves the per-hop serialisation SAF pays).
"""

from __future__ import annotations


from repro.analysis import text_table
from repro.experiments.base import Check, ExperimentResult, check_true
from repro.routing import MinimalFullyAdaptive
from repro.sim.network import NetworkSimulator
from repro.sim.traffic import TrafficConfig, TrafficGenerator
from repro.topology import Mesh

MODES = ("wormhole", "vct", "saf")


def run(
    mesh_size: int = 6,
    *,
    cycles: int = 1200,
    rate: float = 0.04,
    packet_length: int = 4,
) -> ExperimentResult:
    mesh = Mesh(mesh_size, mesh_size)
    checks: list[Check] = []
    rows = []
    latency: dict[str, float] = {}

    for mode in MODES:
        sim = NetworkSimulator(
            mesh,
            MinimalFullyAdaptive(mesh),
            buffer_depth=packet_length,  # VCT/SAF need whole-packet buffers
            switching=mode,
            watchdog=3000,
        )
        traffic = TrafficGenerator(
            mesh,
            TrafficConfig(injection_rate=rate, packet_length=packet_length, seed=29),
        )
        stats = sim.run(cycles, traffic, drain=True)
        latency[mode] = stats.avg_total_latency
        rows.append(
            [mode, f"{stats.avg_total_latency:.1f}",
             f"{stats.throughput(len(mesh.nodes)):.4f}",
             "DEADLOCK" if stats.deadlocked else "ok"]
        )
        checks.append(
            check_true(
                f"{mode}: deadlock-free, all delivered",
                not stats.deadlocked and stats.delivery_ratio == 1.0,
            )
        )

    checks.append(
        check_true(
            "latency ordering WH <= VCT <= SAF",
            latency["wormhole"] <= latency["vct"] * 1.02
            and latency["vct"] <= latency["saf"] * 1.02,
            note={m: round(v, 1) for m, v in latency.items()},
        )
    )
    checks.append(
        check_true(
            "SAF pays per-hop serialisation (strictly slower than WH)",
            latency["saf"] > latency["wormhole"],
            note=f"saf={latency['saf']:.1f} vs wh={latency['wormhole']:.1f}",
        )
    )

    return ExperimentResult(
        exp_id="E1-switching",
        title="Assumption 1: WH / VCT / SAF under the same EbDa design",
        text=text_table(["switching", "avg latency", "throughput", "status"], rows),
        data={"latency": latency},
        checks=tuple(checks),
    )
