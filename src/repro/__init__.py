"""EbDa — design and verification of deadlock-free interconnection networks.

A full reproduction of *"EbDa: A New Theory on Design and Verification of
Deadlock-free Interconnection Networks"* (Ebrahimi & Daneshtalab, ISCA
2017), comprising:

* :mod:`repro.core` — the EbDa theory: channels, partitions, the three
  theorems, turn extraction, Algorithm 1/2, minimal-channel constructions,
  and the arbitrary-network deadlock-free-routing existence condition;
* :mod:`repro.cdg` — channel dependency graphs (Dally verification), the
  Glass-Ni turn-model enumeration, combinatorial complexity accounting;
* :mod:`repro.topology` — n-D mesh, k-ary n-cube, vertically partially
  connected 3D, dragonfly, fat-tree, irregular and arbitrary-graph
  topologies;
* :mod:`repro.routing` — EbDa table-driven routing plus the baseline
  algorithms the paper discusses (XY, west-first, north-last,
  negative-first, Odd-Even, DyXY, Elevator-First, Up*/Down*);
* :mod:`repro.sim` — a cycle-based flit-level wormhole network simulator
  with virtual channels, credit flow control and deadlock detection;
* :mod:`repro.analysis` — adaptiveness metrics and turn accounting;
* :mod:`repro.fuzz` — differential verification fuzzing cross-checking
  theorems, static analyzer, CDG, simulator and the arbitrary-network
  existence condition over five topology families, with minimised
  replayable counterexamples;
* :mod:`repro.analyze` — the static design linter: paper-grounded rules
  (``EBDA001``...) over partitions/turns/classes with text, JSON and
  SARIF reporters (``repro lint``), no CDG build or simulation;
* :mod:`repro.experiments` — one harness per table/figure of the paper.

Quickstart::

    from repro import PartitionSequence, extract_turns
    from repro.cdg import verify_design
    from repro.topology import Mesh

    design = PartitionSequence.parse("X- -> X+ Y+ Y-")   # west-first
    verdict = verify_design(design, Mesh(8, 8))
    assert verdict.acyclic
"""

from repro.core import (
    Channel,
    Partition,
    PartitionSequence,
    Turn,
    TurnKind,
    TurnSet,
    channels,
    check_sequence,
    extract_turns,
    min_channels,
    minimal_fully_adaptive,
    partition_vc_budget,
)
from repro.errors import (
    ChannelParseError,
    ConfigError,
    DeadlockDetected,
    EbdaError,
    FaultError,
    PartitionError,
    RoutingError,
    SimulationError,
    TheoremViolation,
    TopologyError,
    UnroutableError,
)

__version__ = "1.8.0"

#: The stable facade (PEP 562 lazy exports): resolving any of these pulls
#: in the simulator/verification stack on first use, keeping plain
#: ``import repro`` as light as the core theory.
_FACADE = {
    "run_point": "repro.api",
    "sweep": "repro.api",
    "verify": "repro.api",
    "RunConfig": "repro.sim.runner",
    "RunResult": "repro.sim.runner",
    "BackendInfo": "repro.sim.backend",
    "backends": "repro.sim.backend",
    "SimStats": "repro.sim.stats",
    "SweepEngine": "repro.sim.parallel",
    "SweepReport": "repro.sim.parallel",
    "ResultCache": "repro.sim.parallel",
    "MetricsCollector": "repro.sim.metrics",
    "DeadlockForensics": "repro.sim.metrics",
    "FuzzDesign": "repro.fuzz",
    "DesignGenerator": "repro.fuzz",
    "DifferentialOracle": "repro.fuzz",
    "run_fuzz": "repro.fuzz",
    "shrink": "repro.fuzz",
    "Analyzer": "repro.analyze",
    "AnalysisReport": "repro.analyze",
    "DesignUnit": "repro.analyze",
    "Diagnostic": "repro.analyze",
    "lint_design": "repro.analyze",
}


def __getattr__(name: str):
    if name in _FACADE:
        import importlib

        return getattr(importlib.import_module(_FACADE[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_FACADE))


__all__ = [
    "run_point",
    "sweep",
    "verify",
    "RunConfig",
    "RunResult",
    "BackendInfo",
    "backends",
    "SimStats",
    "SweepEngine",
    "SweepReport",
    "ResultCache",
    "MetricsCollector",
    "DeadlockForensics",
    "FuzzDesign",
    "DesignGenerator",
    "DifferentialOracle",
    "run_fuzz",
    "shrink",
    "Analyzer",
    "AnalysisReport",
    "DesignUnit",
    "Diagnostic",
    "lint_design",
    "Channel",
    "Partition",
    "PartitionSequence",
    "Turn",
    "TurnKind",
    "TurnSet",
    "channels",
    "check_sequence",
    "extract_turns",
    "min_channels",
    "minimal_fully_adaptive",
    "partition_vc_budget",
    "ChannelParseError",
    "ConfigError",
    "DeadlockDetected",
    "EbdaError",
    "FaultError",
    "PartitionError",
    "RoutingError",
    "SimulationError",
    "TheoremViolation",
    "TopologyError",
    "UnroutableError",
    "__version__",
]
