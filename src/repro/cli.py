"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    List the available experiments and named designs.
``run <experiment-id> [...]``
    Run one or more experiments (or ``all``) and print their reports.
``verify <design> [--mesh KxK[xK]] [--rule NAME]``
    Verify a partition sequence in arrow notation on a concrete topology.
``design <vc-budget>``
    Run Algorithm 1 on a comma-separated VC budget and print the design,
    its turns and its verification verdict.
``simulate <design-name> [--mesh ...] [--rate ...] [--cycles ...]``
    Simulate a catalog design (or arrow notation) under uniform traffic.
    ``--fail-link 1,1-2,1 --fail-at 100`` injects runtime link failures
    (with rerouting over the degraded topology); ``--drops N`` injects
    transient flit corruption; ``--recover`` arms regressive recovery.
    ``--cache`` serves repeated fault-free points from the result cache;
    ``--backend vector`` runs the struct-of-arrays numpy engine.
``sweep <design-or-routing> [--rates ...] [--jobs N] [--cache]``
    Latency/throughput sweep through the parallel engine; ``--report``
    writes the SweepReport (per-point wall times, engine stage times,
    cache hits) as JSON; ``--metrics-out`` meters every point and writes
    per-point telemetry summaries as JSONL; ``--backend`` selects the
    simulation engine for every point.
``backends``
    List the registered simulation backends and their capabilities.
``inspect <metrics.jsonl> [--summary] [--heatmap] [--forensics]``
    Render an exported telemetry file: text summary, per-partition
    channel-utilization heatmap, deadlock forensics (all three when no
    section flag is given).
``chaos [--trials N] [--seed S] [--checkpoint-dir DIR] [--out FILE]``
    Monte-Carlo chaos campaign (:mod:`repro.chaos`): seeded random fault
    schedules x recovery policies x trace-driven workloads, survival
    curves rendered per policy.  ``--checkpoint-dir`` makes the campaign
    resumable (kill it, rerun the same command, byte-identical output);
    ``--budget-s`` bounds wall-clock time like ``fuzz``; ``--load FILE``
    renders an existing campaign JSONL without running anything.
``lint <designs...|--all> [--format text|json|sarif] [--fail-on SEV]``
    Static lint pass (:mod:`repro.analyze`): run the EBDA rule catalog
    over catalog names or arrow notation without building a CDG or
    simulating.  ``--select/--ignore`` tune the rule set, ``--baseline``
    suppresses recorded findings, ``--torus`` arms the wrap-ring checks,
    ``--list-rules`` prints the catalog.
``certify [families...|--all] [--gate N] [--cert-dir DIR]``
    Symbolic verification (:mod:`repro.analyze.symbolic`): prove the
    EBDA rules over *parametric* design families — all dimensions and
    radices at once — and seal each verdict as a machine-checkable
    certificate.  The independent checker
    (:mod:`repro.analyze.certcheck`) re-validates every certificate
    unless ``--no-check``; ``--gate N`` cross-checks symbolic verdicts
    against the concrete linter at N random ``(n, k)`` points;
    ``--cert-dir`` writes the sealed certificates as JSON files.
``exists <graph.json> [--design SEQ] [--format text|json]``
    Arbitrary-network existence check (:mod:`repro.core.arbitrary`):
    read a directed graph from JSON (``{"edges": [[src, dst], ...]}``),
    lay a channel-class design over it and report whether a
    deadlock-free routing exists (exit 1 when it does not).
``runs list|show <id-prefix>|diff [--ledger DIR]``
    Query the run ledger (:mod:`repro.obs.ledger`): list every recorded
    invocation, show one record by run-id prefix, or report *drift* —
    identities whose outcome digest changed between library versions
    (``diff`` exits 1 when any drift is found).
``top [--dir DIR] [--watch SECONDS]``
    Live progress of running campaigns, tailed from the heartbeat files
    ``fuzz``/``chaos`` write per batch (:mod:`repro.obs.heartbeat`).

``run`` and ``simulate``/``sweep`` accept ``--jobs``, ``--cache`` /
``--no-cache`` and ``--cache-dir``; experiments that fan simulation
points out (V2/V3/V7) inherit them.  ``simulate`` grows telemetry
exports: ``--metrics-out FILE`` (sampled metrics + forensics JSONL,
``--sample-every`` controls the interval) and ``--trace-out FILE``
(structured per-event trace JSONL).

Observability flags (``run``/``simulate``/``sweep``/``fuzz``/``chaos``/
``lint``): ``--spans-out FILE`` traces the command's pipeline spans to
strict JSONL; ``--ledger DIR`` appends the run to the provenance ledger
``repro runs`` queries.  ``fuzz`` and ``chaos`` print a progress line
and beat a heartbeat file per batch; ``--quiet`` suppresses both.
"""

from __future__ import annotations

import argparse
import sys
import time
from contextlib import contextmanager
from typing import Sequence

from repro.analysis import format_turn_table
from repro.cdg import verify_design
from repro.core import PartitionSequence, catalog, extract_turns, partition_vc_budget
from repro.errors import EbdaError, FaultError
from repro.topology import Mesh, NAMED_RULES
from repro.topology.classes import rule_for_design


def _parse_mesh(spec: str) -> Mesh:
    try:
        return Mesh(*(int(k) for k in spec.lower().split("x")))
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        raise SystemExit(f"bad mesh spec {spec!r} (use e.g. 8x8 or 4x4x4): {exc}")


def _resolve_design(text: str) -> tuple[PartitionSequence, str]:
    """A catalog name or arrow notation -> (design, suggested rule name)."""
    if text in catalog.NAMED_DESIGNS:
        return catalog.design(text), text
    try:
        return PartitionSequence.parse(text).validate(), ""
    except EbdaError as exc:
        raise SystemExit(f"cannot parse design {text!r}: {exc}")


def cmd_list(args: argparse.Namespace) -> int:
    from repro.experiments import ALL_EXPERIMENTS

    print("experiments:")
    for name in ALL_EXPERIMENTS:
        print(f"  {name}")
    print("\nnamed designs:")
    for name in sorted(catalog.NAMED_DESIGNS):
        print(f"  {name:20s} {catalog.design(name).arrow_notation()}")
    print("\nclass rules:", ", ".join(sorted(NAMED_RULES)))
    return 0


def _engine_from_args(args: argparse.Namespace):
    """Build the SweepEngine the --jobs/--cache flags describe (or None)."""
    from repro.sim.parallel import SweepEngine

    cache: object = False
    if getattr(args, "cache", False):
        cache = args.cache_dir or True
    jobs = getattr(args, "jobs", 1)
    if jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {jobs}")
    if jobs == 1 and not cache:
        return None
    return SweepEngine(jobs=jobs, cache=cache)


@contextmanager
def _obs_scope(args: argparse.Namespace):
    """Arm the observability runtime the --spans-out/--ledger flags ask for.

    Installs a :class:`~repro.obs.trace.Tracer` (written to JSONL on the
    way out, even when the command fails) and/or the run ledger for the
    duration of one command.  Commands without the flags pass through
    untouched — ``main`` wraps every command in this scope.
    """
    spans_out = getattr(args, "spans_out", "")
    ledger_dir = getattr(args, "ledger", "")
    if not spans_out and not ledger_dir:
        yield
        return
    from repro.obs import Tracer, set_ledger, set_tracer

    tracer = Tracer() if spans_out else None
    prev_tracer = set_tracer(tracer) if tracer is not None else None
    prev_ledger = set_ledger(ledger_dir) if ledger_dir else None
    try:
        yield
    finally:
        if ledger_dir:
            set_ledger(prev_ledger)
        if tracer is not None:
            set_tracer(prev_tracer)
            n = tracer.to_jsonl(spans_out)
            print(f"spans: {n} events -> {spans_out}", file=sys.stderr)


def cmd_run(args: argparse.Namespace) -> int:
    import inspect

    from repro.experiments import ALL_EXPERIMENTS

    wanted = list(ALL_EXPERIMENTS) if "all" in args.experiments else args.experiments
    unknown = [e for e in wanted if e not in ALL_EXPERIMENTS]
    if unknown:
        raise SystemExit(
            f"unknown experiment(s): {', '.join(unknown)}"
            f" (try: {', '.join(ALL_EXPERIMENTS)})"
        )
    engine = _engine_from_args(args)
    failures = 0
    for name in wanted:
        fn = ALL_EXPERIMENTS[name]
        kwargs = {}
        if engine is not None and "engine" in inspect.signature(fn).parameters:
            kwargs["engine"] = engine
        result = fn(**kwargs)
        print(result.report())
        print()
        if not result.passed:
            failures += 1
    if failures:
        print(f"{failures} experiment(s) FAILED", file=sys.stderr)
    return 1 if failures else 0


def cmd_verify(args: argparse.Namespace) -> int:
    design, suggested = _resolve_design(args.design)
    mesh = _parse_mesh(args.mesh)
    if args.rule:
        if args.rule not in NAMED_RULES:
            raise SystemExit(
                f"unknown rule {args.rule!r}; known: {', '.join(NAMED_RULES)}"
            )
        rule = NAMED_RULES[args.rule]
    else:
        rule = rule_for_design(suggested)
    print(f"design: {design}")
    verdict = verify_design(design, mesh, rule)
    print(f"on {mesh!r}: {verdict}")
    return 0 if verdict.acyclic else 1


def cmd_design(args: argparse.Namespace) -> int:
    try:
        budget = [int(v) for v in args.budget.split(",")]
    except ValueError:
        raise SystemExit(f"bad VC budget {args.budget!r} (use e.g. 3,2,3)")
    design = partition_vc_budget(budget)
    print("Algorithm 1 output:")
    for part in design:
        print(f"  {part}")
    turns = extract_turns(design)
    print(f"\nturns ({len(turns)}):")
    print(format_turn_table(turns))
    mesh = Mesh(*([4] * min(len(budget), 2) + [3] * max(0, len(budget) - 2)))
    print(f"\nverification on {mesh!r}: {verify_design(design, mesh)}")
    return 0


def cmd_logic(args: argparse.Namespace) -> int:
    from repro.analysis import full_logic_listing
    from repro.routing import TurnTableRouting

    design, suggested = _resolve_design(args.design)
    mesh = _parse_mesh(args.mesh)
    rule = rule_for_design(suggested)
    routing = TurnTableRouting(mesh, design, rule, label=suggested or "custom")
    print(full_logic_listing(routing, mesh))
    return 0


def _parse_link(spec: str) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """``"1,1-2,1"`` -> ``((1, 1), (2, 1))``."""
    try:
        u, v = spec.split("-")
        return (
            tuple(int(k) for k in u.split(",")),
            tuple(int(k) for k in v.split(",")),
        )
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        raise SystemExit(f"bad link spec {spec!r} (use e.g. 1,1-2,1): {exc}")


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.routing import TurnTableRouting
    from repro.sim import (
        FaultEvent,
        FaultSchedule,
        NetworkSimulator,
        RecoveryPolicy,
        RunConfig,
        TrafficConfig,
        TrafficGenerator,
    )

    design, suggested = _resolve_design(args.design)
    mesh = _parse_mesh(args.mesh)
    rule = rule_for_design(suggested)
    telemetry = bool(args.metrics_out or args.trace_out)

    if (args.fail_link or args.drops or telemetry) and args.backend != "reference":
        raise SystemExit(
            f"--backend {args.backend} does not support faults or telemetry;"
            " drop the flag (the reference engine handles these)"
        )

    if not (args.fail_link or args.drops or telemetry):
        # Fault-free untelemetered point: run through the engine so
        # --cache works (telemetry forces the direct path below — a
        # metered point is uncacheable and needs the live collector).
        from repro.sim import EbdaDesignFactory, SweepEngine

        engine = _engine_from_args(args) or SweepEngine()
        config = RunConfig(
            cycles=args.cycles,
            injection_rate=args.rate,
            packet_length=args.length,
            buffer_depth=args.buffers,
            watchdog=500,
            seed=args.seed,
            backend=args.backend,
        )
        point = engine.run_point(mesh, EbdaDesignFactory(args.design), config, rule)
        from repro.api import _ledger_point

        _ledger_point(
            mesh, EbdaDesignFactory(args.design), config, rule,
            point.result, point.wall_time,
        )
        print(point.result.stats.summary(len(mesh.nodes)))
        if point.cached:
            print(f"(served from cache in {point.wall_time * 1000:.1f} ms)")
        return 1 if point.result.deadlocked else 0

    events = [
        FaultEvent(args.fail_at, "link", link=_parse_link(spec))
        for spec in args.fail_link
    ]
    events += [
        FaultEvent(args.fail_at + 10 * i, "drop") for i in range(args.drops)
    ]
    faults = FaultSchedule(events, seed=args.seed) if events else None

    def routing_factory(topo):
        return TurnTableRouting(
            topo, design, rule,
            directions="progressive", fallback="escape",
            label=suggested or "custom",
        )

    recovery = RecoveryPolicy(max_retries=args.retries) if args.recover else None
    tracer = None
    collector = None
    if args.trace_out:
        from repro.sim import Trace

        tracer = Trace()
    if args.metrics_out:
        from repro.sim import MetricsCollector

        collector = MetricsCollector(sample_every=args.sample_every)
    routing = TurnTableRouting(mesh, design, rule, label=suggested or "custom")
    sim = NetworkSimulator(
        mesh, routing, rule, buffer_depth=args.buffers,
        tracer=tracer, metrics=collector,
        faults=faults, recovery=recovery,
        routing_factory=routing_factory if faults is not None else None,
    )
    traffic = TrafficGenerator(
        mesh,
        TrafficConfig(
            injection_rate=args.rate, packet_length=args.length, seed=args.seed
        ),
    )
    try:
        stats = sim.run(args.cycles, traffic, drain=True)
    except FaultError as exc:
        raise SystemExit(f"fault schedule failed: {exc}")
    print(stats.summary(len(mesh.nodes)))
    if sim.last_reroute_verdict is not None:
        print(f"rerouted design: {sim.last_reroute_verdict}")
    if collector is not None:
        n = collector.to_jsonl(args.metrics_out, stats=stats)
        print(f"metrics: {n} records -> {args.metrics_out} (try: repro inspect)")
    if tracer is not None:
        n = tracer.to_jsonl(args.trace_out)
        print(f"trace: {n} records -> {args.trace_out}")
    return 1 if stats.deadlocked else 0


def cmd_sweep(args: argparse.Namespace) -> int:
    import json

    from repro.errors import RoutingError
    from repro.sim import (
        NAMED_ROUTING_FACTORIES,
        RunConfig,
        SweepEngine,
        compare_table,
        resolve_routing_factory,
        saturation_rate,
    )

    mesh = _parse_mesh(args.mesh)
    try:
        rates = [float(r) for r in args.rates.split(",") if r]
    except ValueError:
        raise SystemExit(f"bad rates {args.rates!r} (use e.g. 0.02,0.05,0.08)")
    if not rates:
        raise SystemExit("need at least one rate")
    try:
        resolve_routing_factory(args.routing)
    except RoutingError:
        known = ", ".join(sorted(NAMED_ROUTING_FACTORIES))
        raise SystemExit(
            f"unknown routing {args.routing!r}; native: {known}"
            " (catalog design names and arrow notation also accepted)"
        )

    engine = _engine_from_args(args) or SweepEngine()
    config = RunConfig(
        cycles=args.cycles,
        packet_length=args.length,
        buffer_depth=args.buffers,
        pattern=args.pattern,
        selection=args.selection,
        watchdog=max(500, 2 * args.cycles),
        seed=args.seed,
        metrics=bool(args.metrics_out),
        sample_every=args.sample_every,
        backend=args.backend,
    )
    from repro.errors import ConfigError
    from repro.sim import check_run_config, resolve_backend

    try:
        check_run_config(resolve_backend(args.backend), config)
    except ConfigError as exc:
        raise SystemExit(str(exc))
    report = engine.sweep(mesh, args.routing, rates, config)
    print(compare_table({args.routing: report.results}))
    sat = saturation_rate(report.results)
    print(f"saturation: {sat if sat is not None else '> max rate'}")
    print(report.summary())
    print(report.stage_summary())
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2)
        print(f"report written to {args.report}")
    if args.metrics_out:
        # Per-point compact summaries (full per-channel series belong to
        # `simulate --metrics-out`; a sweep meters every point cheaply).
        with open(args.metrics_out, "w") as fh:
            for result in report.results:
                entry = {
                    "record": "sweep-point",
                    "routing": result.routing_name,
                    "injection_rate": result.config.injection_rate,
                }
                if result.metrics is not None:
                    entry.update(result.metrics.summary_dict())
                fh.write(json.dumps(entry, allow_nan=False) + "\n")
        print(f"per-point metrics written to {args.metrics_out}")
    return 1 if any(r.deadlocked for r in report.results) else 0


def cmd_backends(args: argparse.Namespace) -> int:
    from repro.sim import backends

    for info in backends():
        print(f"{info.name}: {info.description}")
        print(f"  cycle-exact:  {'yes' if info.cycle_exact else 'no'}")
        features = {
            "metrics": info.supports_metrics,
            "tracer": info.supports_tracer,
            "faults": info.supports_faults,
            "recovery": info.supports_recovery,
            "waypoints": info.supports_waypoints,
        }
        supported = [k for k, v in features.items() if v]
        print(f"  features:     {', '.join(supported) if supported else '(none)'}")
        print(f"  selections:   {', '.join(info.supported_selections)}")
        print(f"  switching:    {', '.join(info.supported_switching)}")
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    from repro.sim.metrics import (
        load_metrics,
        render_forensics,
        render_heatmap,
        render_summary,
    )

    try:
        records = load_metrics(args.file)
    except EbdaError as exc:
        raise SystemExit(str(exc))
    everything = not (args.summary or args.heatmap or args.forensics)
    sections = []
    if args.summary or everything:
        sections.append(render_summary(records))
    if args.heatmap or everything:
        sections.append(render_heatmap(records))
    if args.forensics or everything:
        sections.append(render_forensics(records))
    print("\n\n".join(sections))
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import (
        FAMILIES,
        DifferentialOracle,
        fast_profile,
        replay_corpus,
        run_fuzz,
        self_check,
    )
    from repro.fuzz.oracle import SimProfile
    from repro.sim.parallel import SweepEngine

    families = None
    if args.families:
        families = tuple(
            name.strip() for name in args.families.split(",") if name.strip()
        )
        unknown = [name for name in families if name not in FAMILIES]
        if unknown or not families:
            raise SystemExit(
                f"unknown families {unknown!r}; choose from {', '.join(FAMILIES)}"
            )

    profile = fast_profile() if args.fast else SimProfile()
    failures = 0

    if args.instantiations > 0:
        from repro.fuzz import run_instantiations

        report = run_instantiations(args.instantiations, seed=args.seed)
        print(report.summary())
        if not report.ok:
            failures += 1

    if args.self_check:
        ok, message = self_check(profile)
        print(message)
        if not ok:
            failures += 1

    if args.replay:
        replayed = replay_corpus(args.replay, profile=profile)
        if not replayed:
            raise SystemExit(f"no corpus entries under {args.replay!r}")
        for entry, detected, trial in replayed:
            status = "ok" if detected else "MISSED"
            print(
                f"replay {entry.id} [{status}] expect={entry.expect}"
                f" got={trial.classification}: {entry.design.describe()}"
            )
            if not detected:
                failures += 1
        print(f"replayed {len(replayed)} corpus entries")

    if args.runs > 0:
        engine = _engine_from_args(args)
        if engine is None and args.jobs > 1:
            engine = SweepEngine(jobs=args.jobs)
        heartbeat = None
        progress = None
        if not args.quiet:
            from repro.obs import HeartbeatWriter

            progress = lambda line: print(line, file=sys.stderr)  # noqa: E731
            heartbeat = HeartbeatWriter(
                f"fuzz-{args.seed}", "fuzz", args.runs
            )
        report = run_fuzz(
            args.runs,
            seed=args.seed,
            budget_s=args.budget_s,
            corpus_dir=args.corpus_dir or None,
            engine=engine,
            profile=profile,
            families=families,
            progress=progress,
            heartbeat=heartbeat,
        )
        print(report.summary())
        if args.report:
            path = report.to_jsonl(args.report)
            print(f"trial log written to {path}")
        if not report.ok:
            failures += 1

    return 1 if failures else 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import CampaignConfig, ChaosCampaign, render_survival
    from repro.sim.parallel import SweepEngine

    if args.load:
        try:
            print(render_survival(args.load))
        except EbdaError as exc:
            raise SystemExit(str(exc))
        return 0

    try:
        mesh = tuple(int(k) for k in args.mesh.lower().split("x"))
    except ValueError:
        raise SystemExit(f"bad mesh spec {args.mesh!r} (use e.g. 4x4)")
    try:
        config = CampaignConfig(
            trials=args.trials,
            seed=args.seed,
            mesh=mesh,
            routing=args.routing,
            workloads=tuple(w for w in args.workloads.split(",") if w),
            policies=tuple(p for p in args.policies.split(",") if p),
            max_faults=args.max_faults,
            cycles=args.cycles,
            buffer_depth=args.buffers,
            watchdog=args.watchdog,
        )
    except EbdaError as exc:
        raise SystemExit(str(exc))

    engine = _engine_from_args(args) or SweepEngine()
    campaign = ChaosCampaign(
        config, engine=engine, checkpoint_dir=args.checkpoint_dir or None
    )
    heartbeat = None
    progress = None
    if not args.quiet:
        from repro.obs import HeartbeatWriter

        progress = print
        heartbeat = HeartbeatWriter(config.token(), "chaos", config.trials)
    report = campaign.run(
        budget_s=args.budget_s, progress=progress, heartbeat=heartbeat
    )
    print(report.summary())
    if args.out:
        n = report.to_jsonl(args.out)
        print(f"campaign report: {n} records -> {args.out}")
    print()
    print(report.render())
    if report.interrupted:
        print(
            "(budget expired — rerun the same command with the same"
            " --checkpoint-dir to finish)"
        )
    return 0 if report.ok else 1


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analyze import (
        RULES,
        Analyzer,
        DesignUnit,
        Severity,
        apply_baseline,
        load_baseline,
        write_baseline,
    )
    from repro.analyze.reporters import render_json, render_sarif, render_text
    from repro.topology import Dragonfly, FatTree, Torus

    # Beyond-mesh catalog designs lint on their native topologies; the
    # dragonfly pair drops EBDA005, whose torus wrap-ring premise misreads
    # dragonfly global 2-rings — EBDA012 (the global-loop analogue) is the
    # real dragonfly check and stays enabled.
    native_lint = {
        "dragonfly-minimal": (lambda: Dragonfly(4), ("EBDA005",)),
        "dragonfly-valiant": (lambda: Dragonfly(4), ("EBDA005",)),
        "fattree-updown": (lambda: FatTree(4, 2, 2), ()),
    }

    if args.list_rules:
        for rid, info in sorted(RULES.items()):
            flags = []
            if info.requires_topology:
                flags.append("topology")
            if not info.default_enabled:
                flags.append("opt-in")
            extra = f" [{', '.join(flags)}]" if flags else ""
            print(f"{rid} {info.severity.value:7s} {info.title}"
                  f" ({info.citation}){extra}")
        return 0

    names = list(args.designs)
    if args.all:
        names.extend(n for n in sorted(catalog.NAMED_DESIGNS) if n not in names)
    if not names:
        raise SystemExit("nothing to lint: name designs or pass --all")

    select = tuple(args.select.split(",")) if args.select else None
    ignore = tuple(args.ignore.split(",")) if args.ignore else ()
    try:
        analyzer = Analyzer(select=select, ignore=ignore)
    except EbdaError as exc:
        raise SystemExit(str(exc))

    rule = None
    if args.rule:
        if args.rule not in NAMED_RULES:
            raise SystemExit(
                f"unknown rule {args.rule!r}; known: {', '.join(NAMED_RULES)}"
            )
        rule = NAMED_RULES[args.rule]

    def topology_for(design: PartitionSequence):
        if args.no_topology:
            return None
        n = len({ch.dim for ch in design.all_channels})
        if args.torus:
            try:
                return Torus(*(int(k) for k in args.torus.lower().split("x")))
            except Exception as exc:  # noqa: BLE001 - CLI boundary
                raise SystemExit(f"bad torus spec {args.torus!r}: {exc}")
        if args.mesh:
            return _parse_mesh(args.mesh)
        return Mesh(*((4,) * max(1, n)))

    def resolve_unvalidated(text: str) -> tuple[PartitionSequence, str]:
        # Unlike _resolve_design, skip .validate(): surfacing theorem
        # violations as diagnostics is the linter's entire purpose.
        if text in catalog.NAMED_DESIGNS:
            return catalog.design(text), text
        try:
            return PartitionSequence.parse(text), ""
        except EbdaError as exc:
            raise SystemExit(f"cannot parse design {text!r}: {exc}")

    reports = []
    for name in names:
        design, suggested = resolve_unvalidated(name)
        design_analyzer = analyzer
        if name in native_lint and not (args.torus or args.mesh or args.no_topology):
            make_topology, extra_ignore = native_lint[name]
            topology = make_topology()
            if extra_ignore:
                design_analyzer = Analyzer(
                    select=select, ignore=ignore + extra_ignore
                )
        else:
            topology = topology_for(design)
        unit = DesignUnit.from_sequence(
            design,
            name=name if name in catalog.NAMED_DESIGNS else design.arrow_notation(),
            topology=topology,
            rule=rule if rule is not None else rule_for_design(suggested),
            claims_fully_adaptive=args.full_adaptive,
        )
        reports.append(design_analyzer.run(unit))

    _ledger_lint(names, reports)

    if args.write_baseline:
        n = write_baseline(reports, args.write_baseline)
        print(f"baseline with {n} fingerprint(s) written to {args.write_baseline}")
        return 0
    if args.baseline:
        try:
            reports = apply_baseline(reports, load_baseline(args.baseline))
        except EbdaError as exc:
            raise SystemExit(str(exc))

    if args.format == "json":
        rendered = render_json(reports)
    elif args.format == "sarif":
        rendered = render_sarif(reports)
    else:
        rendered = render_text(reports, verbose=args.verbose)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(rendered + "\n")
        print(f"{args.format} report written to {args.output}")
    else:
        print(rendered)

    if args.fail_on == "never":
        return 0
    threshold = Severity(args.fail_on)
    failing = sum(len(r.at_or_above(threshold)) for r in reports)
    return 1 if failing else 0


def _ledger_lint(names: list, reports: list) -> None:
    """Append one ``lint`` run record (pre-baseline) when a ledger is armed.

    The payload maps each unit to its sorted diagnostic rule IDs — a
    deterministic digest, so a rule catalog change shows up as drift.
    """
    import hashlib

    from repro.obs.ledger import current_ledger, record_run

    if current_ledger() is None:
        return
    spec = ",".join(names)
    if len(spec) > 80:
        spec = "designs:" + hashlib.sha256(spec.encode()).hexdigest()[:16]
    findings = sum(len(r.diagnostics) for r in reports)
    record_run(
        "lint",
        spec=spec,
        outcome="findings" if findings else "ok",
        payload={
            r.unit_name: sorted(d.rule for d in r.diagnostics) for r in reports
        },
        wall_s=sum(r.elapsed_s for r in reports),
    )


def _describe_region(region: dict) -> str:
    kind = region.get("kind")
    if kind == "none":
        return "nowhere"
    if kind == "all":
        return "every (n, k) in the domain"
    if kind == "n-ge":
        return f"all n >= {region['n0']}"
    if kind == "k-ge":
        return f"all k >= {region['k0']}"
    return f"region {region!r}"


def cmd_certify(args: argparse.Namespace) -> int:
    import json

    from repro.analyze import (
        SYMBOLIC_FAMILIES,
        certify_all,
        check_certificates,
        differential_gate,
    )

    names = list(args.families)
    if args.all or not names:
        names = sorted(SYMBOLIC_FAMILIES)
    start = time.perf_counter()
    try:
        reports = certify_all(tuple(names))
    except EbdaError as exc:
        raise SystemExit(str(exc))

    failures = 0
    certs = [c for rep in reports for c in rep.certificates]

    check_problems: list[str] = []
    if not args.no_check:
        for result in check_certificates([c.to_dict() for c in certs]):
            if not result.ok:
                failures += 1
                check_problems.append(result.describe())

    gate = None
    if args.gate > 0:
        try:
            gate = differential_gate(tuple(names), points=args.gate, seed=args.seed)
        except EbdaError as exc:
            raise SystemExit(str(exc))
        failures += len(gate.disagreements)

    if args.format == "json":
        payload = {
            "families": [rep.to_dict() for rep in reports],
            "certificates": len(certs),
            "checker": None if args.no_check else {
                "checked": len(certs),
                "problems": check_problems,
            },
            "differential": None if gate is None else gate.to_dict(),
            "ok": failures == 0,
        }
        rendered = json.dumps(payload, indent=2, sort_keys=True)
    else:
        lines = []
        for rep in reports:
            design = symbolic_family_summary(rep.family)
            if rep.ok:
                verdict = (
                    f"proven clean ({len(rep.applicable_rules)} rules,"
                    f" {len(rep.certificates) - len(rep.applicable_rules)}"
                    " inapplicable)"
                )
            else:
                parts = [
                    f"{c.rule} fires on {_describe_region(c.region)}"
                    for c in rep.certificates
                    if c.status == "violation"
                ]
                verdict = "; ".join(parts)
            lines.append(f"{rep.family} ({design}): {verdict}")
        lines.append(
            f"{len(reports)} families, {len(certs)} certificates"
        )
        if not args.no_check:
            lines.append(
                "checker: all certificates independently re-validated"
                if not check_problems
                else "checker REJECTED certificates:"
            )
            lines.extend(f"  {p}" for p in check_problems)
        if gate is not None:
            verdict = (
                "zero disagreements"
                if gate.ok
                else f"{len(gate.disagreements)} DISAGREEMENT(S)"
            )
            lines.append(
                f"differential: {len(gate.checked)} symbolic-vs-concrete"
                f" checks at {gate.points} random points — {verdict}"
            )
            lines.extend(f"  {d.describe()}" for d in gate.disagreements)
        rendered = "\n".join(lines)

    if args.out:
        with open(args.out, "w") as fh:
            fh.write(rendered + "\n")
        print(f"{args.format} certification report written to {args.out}")
    else:
        print(rendered)

    if args.cert_dir:
        import os

        os.makedirs(args.cert_dir, exist_ok=True)
        for rep in reports:
            path = os.path.join(args.cert_dir, f"{rep.family}.json")
            with open(path, "w") as fh:
                fh.write(
                    json.dumps([c.to_dict() for c in rep.certificates]) + "\n"
                )
        print(f"{len(reports)} certificate files written to {args.cert_dir}")

    _ledger_certify(names, reports, failures, time.perf_counter() - start)
    return 1 if failures else 0


def symbolic_family_summary(name: str) -> str:
    """One-line domain summary for a family, e.g. ``mesh, n >= 2, k >= 2``."""
    from repro.analyze import symbolic_family

    design = symbolic_family(name)
    if design.n_fixed is not None:
        shape = f"n = {design.n_fixed}"
    else:
        shape = f"n >= {design.n_min}"
    return f"{design.kind}, {shape}, k >= {design.k_min}"


def _ledger_certify(
    names: list, reports: list, failures: int, wall_s: float
) -> None:
    import hashlib

    from repro.obs.ledger import current_ledger, record_run

    if current_ledger() is None:
        return
    spec = ",".join(names)
    if len(spec) > 80:
        spec = "families:" + hashlib.sha256(spec.encode()).hexdigest()[:16]
    record_run(
        "certify",
        spec=spec,
        outcome="failures" if failures else "ok",
        payload={
            rep.family: sorted(rep.violation_rules) for rep in reports
        },
        wall_s=wall_s,
    )


def cmd_exists(args: argparse.Namespace) -> int:
    import json

    from repro.core.arbitrary import verdict_from_turns
    from repro.topology.irregular import GraphTopology

    try:
        with open(args.graph) as fh:
            spec = json.load(fh)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot read graph file {args.graph!r}: {exc}")
    if not isinstance(spec, dict) or "edges" not in spec:
        raise SystemExit(
            'graph JSON must be an object with an "edges" list;'
            ' optional keys: "nodes", "design"'
        )

    def coord(value: object) -> tuple:
        # Scalar node labels become 1-tuples, the coordinate form
        # GraphTopology expects.
        if isinstance(value, list):
            return tuple(value)
        return (value,)

    try:
        edges = [(coord(u), coord(v)) for u, v in spec["edges"]]
    except (TypeError, ValueError):
        raise SystemExit('each edge must be a [src, dst] pair')
    nodes = [coord(n) for n in spec.get("nodes", ())]

    # The channel-class structure laid over the graph: a partition
    # sequence in arrow notation (CLI flag wins over the file's "design"
    # key).  Default is the single class X+, which makes the existence
    # check a pure wait-graph drain over the raw links.
    design_text = args.design or str(spec.get("design", "")) or "X+"
    try:
        topology = GraphTopology(edges, nodes)
        sequence = PartitionSequence.parse(design_text)
        turnset = extract_turns(sequence, validate=False)
    except EbdaError as exc:
        raise SystemExit(str(exc))

    verdict = verdict_from_turns(topology, turnset, sequence.all_channels)

    if args.format == "json":
        print(json.dumps({
            "graph": {"nodes": len(topology.nodes), "edges": len(topology.links)},
            "design": design_text,
            "safe": verdict.safe,
            "wires": verdict.wires,
            "dependencies": verdict.dependencies,
            "core": verdict.core,
            "cycle": list(verdict.cycle),
        }, indent=2, sort_keys=True))
    else:
        print(
            f"graph: {len(topology.nodes)} nodes,"
            f" {len(topology.links)} directed links; design: {design_text}"
        )
        print(verdict.describe())
    return 0 if verdict.safe else 1


def cmd_runs(args: argparse.Namespace) -> int:
    from repro.obs import RunLedger

    ledger = RunLedger(args.ledger or None)
    try:
        records = ledger.records()
    except EbdaError as exc:
        raise SystemExit(str(exc))

    if args.action == "list":
        if not records:
            print(f"(no runs recorded under {ledger.path})")
            return 0
        print(f"{'RUN-ID':16s} {'KIND':9s} {'BACKEND':9s} {'SEED':>5s}"
              f" {'OUTCOME':12s} {'WALL':>8s}  SPEC")
        for r in records:
            print(
                f"{r.run_id:16s} {r.kind:9s} {r.backend:9s} {r.seed:5d}"
                f" {r.outcome:12s} {r.wall_s:7.2f}s  {r.spec}"
            )
        return 0

    if args.action == "show":
        import json

        matches = ledger.find(args.run_id)
        if not matches:
            raise SystemExit(
                f"no run matches id prefix {args.run_id!r} in {ledger.path}"
            )
        for r in matches:
            print(json.dumps(r.to_dict(), indent=2, sort_keys=True))
        return 0

    # diff: identity groups whose outcome digest changed across records.
    rows = ledger.drift()
    if not rows:
        print(f"no drift across {len(records)} run(s): every repeated"
              " identity reproduced the same outcome digest")
        return 0
    for row in rows:
        print(
            f"DRIFT {row['kind']} spec={row['spec']}"
            f" backend={row['backend']} seed={row['seed']}:"
        )
        for v in row["variants"]:
            versions = ",".join(f"{k}={v2}" for k, v2 in sorted(v["versions"].items()))
            print(
                f"  {v['run_id']}  digest={v['digest']}"
                f" outcome={v['outcome']}  [{versions}]"
            )
    print(f"{len(rows)} drifting identit(y/ies)", file=sys.stderr)
    return 1


def cmd_top(args: argparse.Namespace) -> int:
    import time

    from repro.obs import render_top

    directory = args.dir or None
    if not args.watch:
        print(render_top(directory=directory))
        return 0
    try:
        while True:
            print("\033[2J\033[H", end="")
            print(render_top(directory=directory))
            time.sleep(args.watch)
    except KeyboardInterrupt:
        return 0


def _add_backend_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend", choices=("reference", "vector"), default="reference",
        help="simulation engine: reference (full feature set) or vector"
        " (numpy kernel, cycle-exact, much faster; see `repro backends`)",
    )


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--spans-out", default="", metavar="FILE",
        help="trace the command's pipeline spans and write them as JSONL",
    )
    parser.add_argument(
        "--ledger", default="", metavar="DIR",
        help="append this run to the ledger in DIR (query with `repro runs`;"
        " $REPRO_EBDA_LEDGER_DIR arms it globally)",
    )


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for simulation points (default 1: in-process)",
    )
    parser.add_argument(
        "--cache", dest="cache", action="store_true", default=False,
        help="serve repeated points from the on-disk result cache",
    )
    parser.add_argument(
        "--no-cache", dest="cache", action="store_false",
        help="disable the result cache (the default)",
    )
    parser.add_argument(
        "--cache-dir", default="", metavar="DIR",
        help="cache directory (default ~/.cache/repro-ebda or $REPRO_EBDA_CACHE_DIR)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EbDa: design and verification of deadlock-free interconnection networks",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and named designs").set_defaults(
        func=cmd_list
    )

    p_run = sub.add_parser("run", help="run experiments by id (or 'all')")
    p_run.add_argument("experiments", nargs="+")
    _add_engine_flags(p_run)
    _add_obs_flags(p_run)
    p_run.set_defaults(func=cmd_run)

    p_verify = sub.add_parser("verify", help="verify a design on a mesh")
    p_verify.add_argument("design", help="catalog name or arrow notation")
    p_verify.add_argument("--mesh", default="8x8")
    p_verify.add_argument("--rule", default="", help=f"one of: {', '.join(NAMED_RULES)}")
    p_verify.set_defaults(func=cmd_verify)

    p_design = sub.add_parser("design", help="run Algorithm 1 on a VC budget")
    p_design.add_argument("budget", help="comma-separated VCs per dimension, e.g. 3,2,3")
    p_design.set_defaults(func=cmd_design)

    p_logic = sub.add_parser("logic", help="emit the §5.4 if-else routing logic")
    p_logic.add_argument("design", help="catalog name or arrow notation (2D)")
    p_logic.add_argument("--mesh", default="4x4")
    p_logic.set_defaults(func=cmd_logic)

    p_sim = sub.add_parser("simulate", help="simulate a design under uniform traffic")
    p_sim.add_argument("design")
    p_sim.add_argument("--mesh", default="8x8")
    p_sim.add_argument("--rate", type=float, default=0.05)
    p_sim.add_argument("--cycles", type=int, default=2000)
    p_sim.add_argument("--length", type=int, default=4)
    p_sim.add_argument("--buffers", type=int, default=4)
    p_sim.add_argument("--seed", type=int, default=1)
    p_sim.add_argument(
        "--fail-link", action="append", default=[], metavar="U-V",
        help="fail a bidirectional link mid-run, e.g. 1,1-2,1 (repeatable)",
    )
    p_sim.add_argument(
        "--fail-at", type=int, default=100, metavar="CYCLE",
        help="cycle at which scheduled faults strike (default 100)",
    )
    p_sim.add_argument(
        "--drops", type=int, default=0,
        help="number of transient flit-corruption faults to inject",
    )
    p_sim.add_argument(
        "--recover", action="store_true",
        help="arm regressive recovery (victim abort + retransmission)",
    )
    p_sim.add_argument(
        "--retries", type=int, default=8,
        help="per-packet retransmission budget (with --recover)",
    )
    p_sim.add_argument(
        "--metrics-out", default="", metavar="FILE",
        help="attach a MetricsCollector and export telemetry JSONL"
        " (renderable with `repro inspect`)",
    )
    p_sim.add_argument(
        "--sample-every", type=int, default=100, metavar="N",
        help="metrics sampling interval in cycles (default 100)",
    )
    p_sim.add_argument(
        "--trace-out", default="", metavar="FILE",
        help="attach a Trace and export per-event records as JSONL",
    )
    _add_backend_flag(p_sim)
    _add_engine_flags(p_sim)
    _add_obs_flags(p_sim)
    p_sim.set_defaults(func=cmd_simulate)

    p_sweep = sub.add_parser(
        "sweep", help="latency/throughput sweep through the parallel engine"
    )
    p_sweep.add_argument(
        "routing",
        help="named routing (e.g. xy, odd-even), catalog design or arrow notation",
    )
    p_sweep.add_argument("--mesh", default="8x8")
    p_sweep.add_argument(
        "--rates", default="0.02,0.05,0.08,0.12",
        help="comma-separated injection rates",
    )
    p_sweep.add_argument("--cycles", type=int, default=2000)
    p_sweep.add_argument("--length", type=int, default=4)
    p_sweep.add_argument("--buffers", type=int, default=4)
    p_sweep.add_argument("--seed", type=int, default=1)
    p_sweep.add_argument(
        "--pattern", default="uniform",
        help="named traffic pattern (uniform, transpose, tornado, ...)",
    )
    p_sweep.add_argument(
        "--selection", default="first",
        help="named selection policy (first, random, zigzag, congestion)",
    )
    p_sweep.add_argument(
        "--report", default="", metavar="FILE",
        help="write the SweepReport (timings, stage times, cache hits) as JSON",
    )
    p_sweep.add_argument(
        "--metrics-out", default="", metavar="FILE",
        help="meter every point and write per-point telemetry summaries"
        " as JSONL (disables caching for those points)",
    )
    p_sweep.add_argument(
        "--sample-every", type=int, default=100, metavar="N",
        help="metrics sampling interval in cycles (default 100)",
    )
    _add_backend_flag(p_sweep)
    _add_engine_flags(p_sweep)
    _add_obs_flags(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    sub.add_parser(
        "backends", help="list simulation backends and their capabilities"
    ).set_defaults(func=cmd_backends)

    p_inspect = sub.add_parser(
        "inspect", help="render an exported telemetry JSONL file"
    )
    p_inspect.add_argument("file", help="metrics JSONL from simulate --metrics-out")
    p_inspect.add_argument(
        "--summary", action="store_true", help="print only the text summary"
    )
    p_inspect.add_argument(
        "--heatmap", action="store_true",
        help="print only the per-partition channel-utilization heatmap",
    )
    p_inspect.add_argument(
        "--forensics", action="store_true",
        help="print only the deadlock forensics report",
    )
    p_inspect.set_defaults(func=cmd_inspect)

    p_lint = sub.add_parser(
        "lint",
        help="static lint pass over designs (no CDG build, no simulation)",
    )
    p_lint.add_argument(
        "designs", nargs="*",
        help="catalog names or arrow notation (with --all: the whole catalog)",
    )
    p_lint.add_argument(
        "--all", action="store_true", help="lint every catalog design"
    )
    p_lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog (IDs, severities, citations) and exit",
    )
    p_lint.add_argument(
        "--mesh", default="", metavar="KxK",
        help="lint on this mesh (default: a 4-per-dim mesh per design)",
    )
    p_lint.add_argument(
        "--torus", default="", metavar="KxK",
        help="lint on this torus instead of a mesh (arms wrap-ring checks)",
    )
    p_lint.add_argument(
        "--no-topology", action="store_true",
        help="skip topology-aware rules entirely",
    )
    p_lint.add_argument(
        "--rule", default="", help=f"class rule, one of: {', '.join(NAMED_RULES)}"
    )
    p_lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default text)",
    )
    p_lint.add_argument(
        "--output", default="", metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    p_lint.add_argument(
        "--select", default="", metavar="IDS",
        help="comma-separated rule IDs to run (enables opt-in rules)",
    )
    p_lint.add_argument(
        "--ignore", default="", metavar="IDS",
        help="comma-separated rule IDs to skip",
    )
    p_lint.add_argument(
        "--fail-on", choices=("error", "warning", "note", "never"),
        default="error",
        help="exit nonzero when a diagnostic at/above this severity remains"
        " (default error)",
    )
    p_lint.add_argument(
        "--baseline", default="", metavar="FILE",
        help="suppress findings whose fingerprints appear in this baseline",
    )
    p_lint.add_argument(
        "--write-baseline", default="", metavar="FILE",
        help="record current findings as a baseline and exit",
    )
    p_lint.add_argument(
        "--full-adaptive", action="store_true",
        help="assert the design claims full adaptivity (arms EBDA009)",
    )
    p_lint.add_argument(
        "--verbose", action="store_true",
        help="show per-design rule lists and timings (text format)",
    )
    _add_obs_flags(p_lint)
    p_lint.set_defaults(func=cmd_lint)

    p_cert = sub.add_parser(
        "certify",
        help="symbolic verification: prove EBDA rules over all radices"
        " and seal machine-checkable certificates",
    )
    p_cert.add_argument(
        "families", nargs="*",
        help="symbolic family names (default: every registered family)",
    )
    p_cert.add_argument(
        "--all", action="store_true",
        help="certify every registered family (the default when no"
        " families are named)",
    )
    p_cert.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default text)",
    )
    p_cert.add_argument(
        "--out", default="", metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    p_cert.add_argument(
        "--cert-dir", default="", metavar="DIR",
        help="also write one sealed-certificate JSON file per family here",
    )
    p_cert.add_argument(
        "--gate", type=int, default=0, metavar="N",
        help="also run the differential gate: cross-check symbolic"
        " verdicts against the concrete linter at N random (n, k) points",
    )
    p_cert.add_argument(
        "--seed", type=int, default=0,
        help="differential-gate root seed (default 0)",
    )
    p_cert.add_argument(
        "--no-check", action="store_true",
        help="skip the independent certificate re-validation pass",
    )
    _add_obs_flags(p_cert)
    p_cert.set_defaults(func=cmd_certify)

    p_exists = sub.add_parser(
        "exists",
        help="arbitrary-network existence check: does a deadlock-free"
        " routing exist on a user-supplied graph?",
    )
    p_exists.add_argument(
        "graph", metavar="GRAPH.json",
        help='JSON file: {"edges": [[src, dst], ...], "nodes": [...],'
        ' "design": "..."} — nodes are scalars or coordinate lists',
    )
    p_exists.add_argument(
        "--design", default="", metavar="SEQ",
        help="channel-class design in arrow notation laid over the graph"
        " (default: the file's \"design\" key, else the single class X+)",
    )
    p_exists.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default text)",
    )
    _add_obs_flags(p_exists)
    p_exists.set_defaults(func=cmd_exists)

    p_chaos = sub.add_parser(
        "chaos",
        help="Monte-Carlo chaos campaign: faults x policies x workloads",
    )
    p_chaos.add_argument(
        "--trials", type=int, default=50, metavar="N",
        help="number of Monte-Carlo trials (default 50)",
    )
    p_chaos.add_argument(
        "--seed", type=int, default=0, help="campaign root seed (default 0)"
    )
    p_chaos.add_argument("--mesh", default="4x4")
    p_chaos.add_argument(
        "--routing", default="negative-first",
        help="routing spec under test (catalog design or native name)",
    )
    p_chaos.add_argument(
        "--workloads", default="all-reduce,shuffle,incast,bursty",
        help="comma-separated named workloads to mix (see docs/CHAOS.md)",
    )
    p_chaos.add_argument(
        "--policies", default="none,retry-2,retry-8",
        help="comma-separated recovery policies to compare",
    )
    p_chaos.add_argument(
        "--max-faults", type=int, default=2, metavar="K",
        help="per-trial link failures drawn uniformly from 0..K (default 2)",
    )
    p_chaos.add_argument("--cycles", type=int, default=300)
    p_chaos.add_argument("--buffers", type=int, default=4)
    p_chaos.add_argument("--watchdog", type=int, default=200)
    p_chaos.add_argument(
        "--budget-s", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget; the campaign stops cleanly between batches",
    )
    p_chaos.add_argument(
        "--checkpoint-dir", default="", metavar="DIR",
        help="persist per-trial records here; rerunning resumes byte-identically",
    )
    p_chaos.add_argument(
        "--out", default="", metavar="FILE",
        help="write the campaign report (meta + trials + survival) as JSONL",
    )
    p_chaos.add_argument(
        "--load", default="", metavar="FILE",
        help="render an existing campaign JSONL and exit (no simulation)",
    )
    p_chaos.add_argument(
        "--quiet", action="store_true",
        help="suppress per-batch progress lines and heartbeat files",
    )
    _add_engine_flags(p_chaos)
    _add_obs_flags(p_chaos)
    p_chaos.set_defaults(func=cmd_chaos)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing: cross-check theorems, CDG and simulator",
    )
    p_fuzz.add_argument(
        "--runs", type=int, default=200, metavar="N",
        help="number of differential trials (default 200; 0 skips the campaign)",
    )
    p_fuzz.add_argument(
        "--seed", type=int, default=0, help="generator root seed (default 0)"
    )
    p_fuzz.add_argument(
        "--families", default="", metavar="CSV",
        help="topology families to draw designs from, comma-separated"
        " (mesh,torus,dragonfly,fattree,irregular; default mesh,torus)",
    )
    p_fuzz.add_argument(
        "--budget-s", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget; the campaign stops cleanly between batches",
    )
    p_fuzz.add_argument(
        "--corpus-dir", default="", metavar="DIR",
        help="persist minimised disagreement witnesses here for replay",
    )
    p_fuzz.add_argument(
        "--report", default="", metavar="FILE",
        help="write a JSONL trial log (one line per trial + totals)",
    )
    p_fuzz.add_argument(
        "--replay", default="", metavar="DIR",
        help="re-judge every saved witness in DIR before fuzzing",
    )
    p_fuzz.add_argument(
        "--self-check", action="store_true",
        help="inject a synthetic disagreement and verify detection + shrinking",
    )
    p_fuzz.add_argument(
        "--instantiations", type=int, default=0, metavar="N",
        help="also run the instantiation oracle: cross-check symbolic"
        " certificates against the concrete linter at N random (n, k)"
        " points (default 0: off)",
    )
    p_fuzz.add_argument(
        "--fast", action="store_true",
        help="shorter simulation budgets (smoke runs, property tests)",
    )
    p_fuzz.add_argument(
        "--quiet", action="store_true",
        help="suppress per-batch progress lines and heartbeat files",
    )
    _add_engine_flags(p_fuzz)
    _add_obs_flags(p_fuzz)
    p_fuzz.set_defaults(func=cmd_fuzz)

    p_runs = sub.add_parser(
        "runs", help="query the run ledger (provenance and drift)"
    )
    p_runs.add_argument(
        "action", choices=("list", "show", "diff"),
        help="list all runs, show one by id prefix, or report outcome drift",
    )
    p_runs.add_argument(
        "run_id", nargs="?", default="",
        help="run-id prefix (for `runs show`)",
    )
    p_runs.add_argument(
        "--ledger", default="", metavar="DIR",
        help="ledger directory (default $REPRO_EBDA_LEDGER_DIR or"
        " <cache-dir>/ledger)",
    )
    p_runs.set_defaults(func=cmd_runs)

    p_top = sub.add_parser(
        "top", help="live progress of running campaigns (heartbeat files)"
    )
    p_top.add_argument(
        "--dir", default="", metavar="DIR",
        help="heartbeat directory (default $REPRO_EBDA_HEARTBEAT_DIR or"
        " <cache-dir>/heartbeats)",
    )
    p_top.add_argument(
        "--watch", type=float, default=0.0, metavar="SECONDS",
        help="redraw every SECONDS until interrupted (default: one shot)",
    )
    p_top.set_defaults(func=cmd_top)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        with _obs_scope(args):
            return args.func(args)
    except BrokenPipeError:  # e.g. `repro list | head`
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
