"""Routing-unit logic generation (§5.4).

"In the routing unit, turns can be expressed by some if-else statements."
This module derives those statements from any 2D routing function: for
every incoming channel class (including injection) and every destination
region (sign of the X/Y offsets), it collects the offered output channels
across all (src, dst) pairs and emits the paper-style pseudocode.

Used by designers to inspect what a partition sequence *means* in RTL
terms, and by the test-suite to confirm e.g. that the XY design compiles
to the paper's exact two-branch snippet shape while the fully adaptive
design yields ``Channel <- E or N`` in the NE region.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.turncount import compass_channel
from repro.core.channel import Channel
from repro.errors import RoutingError
from repro.routing.base import RoutingFunction
from repro.topology.mesh import Mesh

#: Offset-sign regions in display order, with their conditions.
_REGIONS: tuple[tuple[tuple[int, int], str], ...] = (
    ((+1, +1), "X_offset > 0 and Y_offset > 0"),
    ((+1, -1), "X_offset > 0 and Y_offset < 0"),
    ((-1, +1), "X_offset < 0 and Y_offset > 0"),
    ((-1, -1), "X_offset < 0 and Y_offset < 0"),
    ((+1, 0), "X_offset > 0 and Y_offset = 0"),
    ((-1, 0), "X_offset < 0 and Y_offset = 0"),
    ((0, +1), "X_offset = 0 and Y_offset > 0"),
    ((0, -1), "X_offset = 0 and Y_offset < 0"),
)


def _sign(v: int) -> int:
    return (v > 0) - (v < 0)


@dataclass(frozen=True)
class Decision:
    """One row of the decision table."""

    in_channel: Channel | None
    region: tuple[int, int]
    condition: str
    #: Output channel-class sets observed; one entry when the decision is
    #: position-independent, several when it varies with location (e.g.
    #: Odd-Even's column parity).
    outputs: tuple[frozenset[Channel], ...]

    @property
    def uniform(self) -> bool:
        """True when every position in the region sees the same options."""
        return len(self.outputs) == 1

    def render(self) -> str:
        def fmt(options: frozenset[Channel]) -> str:
            # channels identical up to VC number are "identical turns"
            # (§6.3) — the logic shows each direction once
            labels = sorted({compass_channel(c, with_vc=False) for c in options})
            return " or ".join(labels) if labels else "(blocked)"

        if self.uniform:
            return fmt(self.outputs[0])
        return " | ".join(fmt(o) for o in self.outputs) + "   (position-dependent)"


def decision_table(
    routing: RoutingFunction,
    mesh: Mesh | None = None,
    in_channel: Channel | None = None,
) -> list[Decision]:
    """Observed routing decisions per destination region.

    Only reachable states are sampled: for a non-None ``in_channel`` the
    pair (src, dst) is included when some position actually offers that
    arrival under the function's own moves (approximated by offset
    feasibility: the incoming move must have been productive).
    """
    if mesh is None:
        mesh = routing.topology  # type: ignore[assignment]
    if not isinstance(mesh, Mesh) or mesh.n_dims != 2:
        raise RoutingError("decision tables are generated for 2D meshes")
    table: list[Decision] = []
    for region, condition in _REGIONS:
        seen: dict[frozenset[Channel], None] = {}
        for src in mesh.nodes:
            for dst in mesh.nodes:
                if src == dst:
                    continue
                if (_sign(dst[0] - src[0]), _sign(dst[1] - src[1])) != region:
                    continue
                if in_channel is not None:
                    # the packet just moved along in_channel: that move must
                    # have been productive from the previous position, which
                    # requires room behind src in that direction
                    prev = (
                        src[0] - in_channel.sign if in_channel.dim == 0 else src[0],
                        src[1] - in_channel.sign if in_channel.dim == 1 else src[1],
                    )
                    if prev not in mesh.node_set:
                        continue
                options = frozenset(
                    ch for _nxt, ch in routing.candidates(src, dst, in_channel)
                )
                seen.setdefault(options, None)
        if seen:
            table.append(
                Decision(in_channel, region, condition, tuple(seen))
            )
    return table


def routing_logic(
    routing: RoutingFunction,
    mesh: Mesh | None = None,
    in_channel: Channel | None = None,
) -> str:
    """The §5.4-style if-else pseudocode for one incoming channel state.

    >>> from repro.routing import xy_routing
    >>> print(routing_logic(xy_routing(Mesh(4, 4))).splitlines()[0])
    if X_offset > 0 and Y_offset > 0 then Channel <- E;
    """
    lines = []
    keyword = "if"
    for decision in decision_table(routing, mesh, in_channel):
        lines.append(
            f"{keyword} {decision.condition} then Channel <- {decision.render()};"
        )
        keyword = "elsif"
    lines.append("end if;")
    return "\n".join(lines)


def full_logic_listing(routing: RoutingFunction, mesh: Mesh | None = None) -> str:
    """Pseudocode for injection plus every incoming channel class."""
    if mesh is None:
        mesh = routing.topology  # type: ignore[assignment]
    sections = [f"-- {routing.name} on {mesh!r}"]
    sections.append("-- injection (no incoming channel):")
    sections.append(routing_logic(routing, mesh, None))
    for ch in routing.channel_classes:
        sections.append(f"\n-- arriving on {compass_channel(ch)}:")
        sections.append(routing_logic(routing, mesh, ch))
    return "\n".join(sections)
