"""Adaptivity metrics on concrete networks.

Section 4 calls a design *fully adaptive* when every minimal path is
available.  This module measures that directly against a routing function:
enumerate the minimal node-paths of each (src, dst) pair and check, via a
feasible-class-set propagation, whether the routing function can realise
each one.  ``adaptivity == 1.0`` is the operational definition of fully
adaptive; deterministic algorithms score ``1 / #paths`` on average.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.channel import Channel
from repro.routing.base import RoutingFunction
from repro.topology.base import Coord, Topology


def minimal_paths(topology: Topology, src: Coord, dst: Coord) -> Iterator[tuple[Coord, ...]]:
    """All minimal node-paths from ``src`` to ``dst`` (DFS over the oracle)."""

    def extend(path: tuple[Coord, ...]) -> Iterator[tuple[Coord, ...]]:
        cur = path[-1]
        if cur == dst:
            yield path
            return
        for dim, sign in topology.minimal_directions(cur, dst):
            nxt = topology._step(cur, dim, sign)
            if nxt is not None:
                yield from extend(path + (nxt,))

    yield from extend((src,))


def path_is_routable(routing: RoutingFunction, path: Sequence[Coord]) -> bool:
    """Can the routing function realise this node-path with some class choice?

    Propagates the set of feasible channel classes hop by hop; the path is
    routable when the set stays non-empty to the end.
    """
    if len(path) < 2:
        return True
    dst = path[-1]
    feasible: set[Channel] = {
        ch for nxt, ch in routing.candidates(path[0], dst, None) if nxt == path[1]
    }
    for i in range(1, len(path) - 1):
        if not feasible:
            return False
        nxt_feasible: set[Channel] = set()
        for cls in feasible:
            for nxt, ch in routing.candidates(path[i], dst, cls):
                if nxt == path[i + 1]:
                    nxt_feasible.add(ch)
        feasible = nxt_feasible
    return bool(feasible)


@dataclass(frozen=True)
class AdaptivityReport:
    """Minimal-path availability for one routing function."""

    routing_name: str
    pairs: int
    total_paths: int
    routable_paths: int
    fully_adaptive_pairs: int

    @property
    def adaptivity(self) -> float:
        """Fraction of minimal paths the algorithm can use."""
        if self.total_paths == 0:
            return 1.0
        return self.routable_paths / self.total_paths

    @property
    def is_fully_adaptive(self) -> bool:
        return self.routable_paths == self.total_paths

    def __str__(self) -> str:
        return (
            f"{self.routing_name}: adaptivity={self.adaptivity:.3f}"
            f" ({self.routable_paths}/{self.total_paths} minimal paths,"
            f" {self.fully_adaptive_pairs}/{self.pairs} pairs fully adaptive)"
        )


def adaptivity_report(
    topology: Topology,
    routing: RoutingFunction,
    pairs: Sequence[tuple[Coord, Coord]] | None = None,
    *,
    max_paths_per_pair: int = 1000,
) -> AdaptivityReport:
    """Measure adaptivity over the given (or all) src/dst pairs."""
    if pairs is None:
        pairs = [
            (s, d) for s in topology.nodes for d in topology.nodes if s != d
        ]
    total = 0
    routable = 0
    fully = 0
    for src, dst in pairs:
        pair_total = 0
        pair_routable = 0
        for path in minimal_paths(topology, src, dst):
            pair_total += 1
            if pair_total > max_paths_per_pair:
                raise ValueError(
                    f"pair {src}->{dst} has more than {max_paths_per_pair}"
                    " minimal paths; sample pairs instead"
                )
            if path_is_routable(routing, path):
                pair_routable += 1
        total += pair_total
        routable += pair_routable
        if pair_total and pair_routable == pair_total:
            fully += 1
    return AdaptivityReport(
        routing_name=routing.name,
        pairs=len(pairs),
        total_paths=total,
        routable_paths=routable,
        fully_adaptive_pairs=fully,
    )


def region_pairs(topology: Topology, region_signs: tuple[int, ...]) -> list[tuple[Coord, Coord]]:
    """All (src, dst) pairs whose destination lies in the given region.

    Used to reproduce statements like "fully adaptive in the NE region".
    """
    out = []
    for src in topology.nodes:
        for dst in topology.nodes:
            if src == dst:
                continue
            ok = True
            for d, sign in enumerate(region_signs):
                delta = dst[d] - src[d]
                if delta != 0 and (1 if delta > 0 else -1) != sign:
                    ok = False
                    break
                if delta == 0 and sign != +1:
                    # ties count as positive, mirroring regions.region_of
                    ok = False
                    break
            if ok:
                out.append((src, dst))
    return out
