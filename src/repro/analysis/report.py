"""Small text-table helpers shared by the experiment harnesses."""

from __future__ import annotations

from typing import Iterable, Sequence


def text_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned monospace table.

    >>> print(text_table(["a", "b"], [[1, "x"], [22, "yy"]]))
    a   b
    --  --
    1   x
    22  yy
    """
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def bullet_list(items: Iterable[object], *, prefix: str = "  - ") -> str:
    """Render items one per line with a bullet prefix."""
    return "\n".join(f"{prefix}{item}" for item in items)


def banner(title: str, *, width: int = 72) -> str:
    """Section banner used by benchmark output."""
    bar = "=" * width
    return f"{bar}\n{title}\n{bar}"
