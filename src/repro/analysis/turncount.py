"""Turn accounting in the paper's notation (Figure 8, Tables 4 and 5).

The paper writes turns in compass letters with VC suffixes: ``W1U4`` is a
turn from the first west channel to the fourth up channel.  This module
renders a design's extracted turns that way and produces the per-rule
summary tables the case studies report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.channel import Channel
from repro.core.extraction import extract_turns
from repro.core.sequence import PartitionSequence
from repro.core.turns import Turn, TurnKind, TurnSet

_COMPASS = {
    (0, +1): "E", (0, -1): "W",
    (1, +1): "N", (1, -1): "S",
    (2, +1): "U", (2, -1): "D",
}


def compass_channel(ch: Channel, *, with_vc: bool = True) -> str:
    """Paper-style channel label: ``X1-`` -> ``'W1'`` (or ``'W'``).

    Spatial classes append as subscripts: ``Y+@e`` -> ``'Ne'``.
    """
    key = (ch.dim, ch.sign)
    letter = _COMPASS.get(key)
    if letter is None:
        letter = f"{ch.dim_letter}{ch.sign_char}"
    label = letter + (str(ch.vc) if with_vc else "")
    if ch.cls:
        label += ch.cls
    return label


def compass_turn(turn: Turn, *, with_vc: bool = True) -> str:
    """Paper-style turn label: ``X1- -> Z4+`` becomes ``'W1U4'``."""
    return compass_channel(turn.src, with_vc=with_vc) + compass_channel(
        turn.dst, with_vc=with_vc
    )


@dataclass(frozen=True)
class TurnCensus:
    """Aggregate turn counts for one design."""

    design: str
    degree90: int
    u_turns: int
    i_turns: int
    identical_groups: int

    @property
    def total(self) -> int:
        return self.degree90 + self.u_turns + self.i_turns

    def __str__(self) -> str:
        return (
            f"{self.design}: {self.degree90} x 90-degree, {self.u_turns} U,"
            f" {self.i_turns} I ({self.total} total;"
            f" {self.identical_groups} distinct geometries)"
        )


def census(design: PartitionSequence, *, name: str | None = None, **kwargs) -> TurnCensus:
    """Count a design's turns by kind, plus distinct geometric shapes.

    *Identical turns* (paper §6.3) share the geometry (src/dst dimension
    and sign) but differ in VC number or class; ``identical_groups`` is
    the number of distinct geometries among the 90-degree turns.
    """
    turnset = extract_turns(design, **kwargs)
    by_kind = turnset.count_by_kind()
    geometries = {
        ((t.src.dim, t.src.sign), (t.dst.dim, t.dst.sign))
        for t in turnset.of_kind(TurnKind.DEGREE90)
    }
    return TurnCensus(
        design=name or design.arrow_notation(),
        degree90=by_kind[TurnKind.DEGREE90],
        u_turns=by_kind[TurnKind.UTURN],
        i_turns=by_kind[TurnKind.ITURN],
        identical_groups=len(geometries),
    )


def turn_table(turnset: TurnSet, *, with_vc: bool = True) -> dict[str, dict[str, list[str]]]:
    """Figure-8 style table: rule -> kind -> compass turn labels."""
    out: dict[str, dict[str, list[str]]] = {}
    for label, turns in turnset.rules.items():
        if not turns:
            continue
        group: dict[str, list[str]] = {"Turns": [], "U-Turns": [], "I-Turns": []}
        for t in sorted(turns):
            kind = {
                TurnKind.DEGREE90: "Turns",
                TurnKind.UTURN: "U-Turns",
                TurnKind.ITURN: "I-Turns",
            }[t.kind]
            group[kind].append(compass_turn(t, with_vc=with_vc))
        out[label] = {k: v for k, v in group.items() if v}
    return out


def format_turn_table(turnset: TurnSet, *, with_vc: bool = True) -> str:
    """Render :func:`turn_table` as the paper's figure text."""
    lines: list[str] = []
    for label, groups in turn_table(turnset, with_vc=with_vc).items():
        segs = [f"{kind}: {', '.join(turns)}" for kind, turns in groups.items()]
        lines.append(f"{label}: {{{'; '.join(segs)}}}")
    return "\n".join(lines)


def degree90_compass_set(design: PartitionSequence, *, with_vc: bool = True, **kwargs) -> frozenset[str]:
    """The design's 90-degree turns as compass labels (Table 4/5 comparisons)."""
    turnset = extract_turns(design, **kwargs)
    return frozenset(
        compass_turn(t, with_vc=with_vc) for t in turnset.of_kind(TurnKind.DEGREE90)
    )
