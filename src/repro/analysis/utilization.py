"""Link-utilization accounting and ASCII heatmaps.

Every wire counts the flits it carried; this module aggregates those
counters per physical link and renders a 2D mesh as an ASCII heatmap —
the quickest way to *see* where a routing algorithm concentrates load
(XY's row/column hotspots vs an adaptive design's spread).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import SimulationError
from repro.topology.base import Coord, Link
from repro.topology.mesh import Mesh

if TYPE_CHECKING:
    from repro.sim.network import NetworkSimulator

#: Shade ramp from idle to saturated.
_SHADES = " .:-=+*#%@"


def link_utilization(sim: "NetworkSimulator") -> dict[Link, float]:
    """Flits per cycle carried by each physical link (0..1)."""
    if sim.cycle == 0:
        return {link: 0.0 for link in {w.link for w in sim.wires}}
    totals: dict[Link, int] = {}
    for wire, ws in sim.state.items():
        totals[wire.link] = totals.get(wire.link, 0) + ws.flits_carried
    return {link: count / sim.cycle for link, count in totals.items()}


def utilization_stats(sim: "NetworkSimulator") -> tuple[float, float, float]:
    """(mean, max, imbalance) of link utilization.

    *Imbalance* is max/mean — 1.0 for perfectly even load; deterministic
    algorithms under permutation traffic score far higher.
    """
    values = list(link_utilization(sim).values())
    if not values or not any(values):
        return 0.0, 0.0, 1.0
    mean = sum(values) / len(values)
    peak = max(values)
    return mean, peak, (peak / mean if mean else 1.0)


def _shade(value: float, peak: float) -> str:
    if peak <= 0:
        return _SHADES[0]
    idx = min(len(_SHADES) - 1, int(value / peak * (len(_SHADES) - 1) + 0.5))
    return _SHADES[idx]


def mesh_heatmap(sim: "NetworkSimulator") -> str:
    """ASCII heatmap of a 2D mesh's link loads.

    Routers render as ``o``; the two characters between routers shade the
    busier direction of the horizontal/vertical link pair.  Row 0 prints
    at the bottom (matching the paper's figures).
    """
    topo = sim.topology
    if not isinstance(topo, Mesh) or topo.n_dims != 2:
        raise SimulationError("heatmaps are rendered for 2D meshes")
    util = link_utilization(sim)
    peak = max(util.values(), default=0.0)
    kx, ky = topo.shape

    def load(a: Coord, b: Coord) -> float:
        out = 0.0
        for u, v in ((a, b), (b, a)):
            link = topo._link_map.get((u, v))
            if link is not None:
                out = max(out, util.get(link, 0.0))
        return out

    rows: list[str] = []
    for y in reversed(range(ky)):
        cells = []
        for x in range(kx):
            cells.append("o")
            if x + 1 < kx:
                cells.append(_shade(load((x, y), (x + 1, y)), peak) * 2)
        rows.append("".join(cells))
        if y > 0:
            vert = []
            for x in range(kx):
                vert.append(_shade(load((x, y - 1), (x, y)), peak))
                if x + 1 < kx:
                    vert.append("  ")
            rows.append("".join(vert))
    legend = f"peak link load: {peak:.3f} flits/cycle;  ramp '{_SHADES}'"
    return "\n".join(rows + [legend])
