"""Analysis: turn accounting, adaptivity metrics, report formatting."""

from repro.analysis.codegen import Decision, decision_table, full_logic_listing, routing_logic
from repro.analysis.pathdiversity import (
    AdaptivityReport,
    adaptivity_report,
    minimal_paths,
    path_is_routable,
    region_pairs,
)
from repro.analysis.report import banner, bullet_list, text_table
from repro.analysis.utilization import link_utilization, mesh_heatmap, utilization_stats
from repro.analysis.turncount import (
    TurnCensus,
    census,
    compass_channel,
    compass_turn,
    degree90_compass_set,
    format_turn_table,
    turn_table,
)

__all__ = [
    "Decision",
    "decision_table",
    "full_logic_listing",
    "routing_logic",
    "AdaptivityReport",
    "adaptivity_report",
    "minimal_paths",
    "path_is_routable",
    "region_pairs",
    "banner",
    "bullet_list",
    "text_table",
    "link_utilization",
    "mesh_heatmap",
    "utilization_stats",
    "TurnCensus",
    "census",
    "compass_channel",
    "compass_turn",
    "degree90_compass_set",
    "format_turn_table",
    "turn_table",
]
