"""The differential oracle: five independent verdicts on one design.

For every :class:`~repro.fuzz.design.FuzzDesign` the oracle computes:

1. **theorem verdict** — :func:`repro.core.theorems.audit_turns` over the
   compiled turns, plus a wrap-ring closure check on wrap topologies (the
   paper's Theorem 2 torus remark: every ring must be broken by a one-way
   class switch; class-level checks alone cannot see ring closure);
2. **static-analyzer verdict** — the lint pass of :mod:`repro.analyze`
   restricted to its theorem-mirror rules (EBDA001-005).  Those rules
   consume the same structured violation streams as verdict 1 through an
   entirely different wiring (DesignUnit construction, rule registry,
   diagnostic engine), so the two must agree on every trial — any split
   is a bug in the analyzer plumbing;
3. **CDG verdict** — Dally acyclicity of the concrete CDG
   (:func:`repro.cdg.verify.verdict_for`): the conservative turn CDG for
   table-routed designs, the routed CDG for native engines;
4. **simulation verdict** — short wormhole runs with the deadlock
   watchdog: a *crafted ring* run that parks worms along a concrete CDG
   cycle (deterministic deadlock if the cycle is real), then adversarial
   runs (tornado/rotate90/uniform + hotspot traffic);
5. **arbitrary-network verdict** — the Mendlovic-Matias existence
   condition (:mod:`repro.core.arbitrary`): sink-peeling of a wait-for
   relation rebuilt from scratch (no networkx, no shared CDG code).
   Theory says it must coincide with verdict 3 on finite graphs, so
   either split direction is a hard disagreement.

Designs carry a topology family (mesh, torus, dragonfly, fattree,
irregular) and a routing engine.  Table-routed families are judged
through the conservative turn relation; native engines (minimal
dragonfly, Up*/Down*) are judged through their routed relation — the
conservative relation would flag every valid dragonfly (local straight
continuations close global rings a minimal router never takes), and
class-level ring checks do not model engine legality, so the wrap-ring
closure check and topology-aware lint rules apply to table designs only.

Every simulation run is additionally mirrored on the vector backend
(:class:`~repro.sim.vector.VectorSimulator`, same traffic, same seeds)
when the profile's ``compare_backends`` is on: the two engines claim
cycle-exactness, so any difference in the resulting
:meth:`~repro.sim.stats.SimStats.to_dict` — deadlock declaration cycle
included — is the hard disagreement ``backend-divergence``.  Designs
outside the vector engine's scope (custom selections, faults) simply
skip the mirror; ``backend_agree`` stays ``None`` for them.

The theory says theorem-safe ⟹ CDG-acyclic ⟹ no simulator deadlock, so
any edge violated in that chain is a **hard disagreement**:

* ``theorem-safe-cdg-cyclic`` — the theorems certified a cyclic design;
* ``cdg-acyclic-sim-deadlock`` — acyclic CDG but the watchdog fired;
* ``static-clean-theorem-unsafe`` — the linter passed a design the
  theorem oracle rejects (analyzer wiring bug);
* ``static-error-theorem-safe`` — the linter errored on a design the
  theorem oracle certifies (analyzer wiring bug);
* ``valid-design-rejected`` — Algorithm 1/2 output failed the theorems;
* ``valid-design-unroutable`` — a certified design cannot route a pair;
* ``backend-divergence`` — the vector backend produced different stats
  (or a different unroutable verdict) than the reference simulator;
* ``arbitrary-safe-cdg-cyclic`` — the existence condition certified a
  design whose concrete CDG is cyclic;
* ``arbitrary-unsafe-cdg-acyclic`` — the existence condition rejected a
  design whose concrete CDG is acyclic;
* ``oracle-error`` — an oracle crashed (never acceptable).

Everything else is agreement: ``safe-confirmed``, ``unsafe-flagged`` (all
five fire), ``unsafe-conservative`` (theorems reject, concrete CDG is
still acyclic — the theorems are sufficient, not necessary),
``cyclic-not-triggered`` (cycle exists but minimal routing cannot express
it, e.g. a descending U-turn mutant), ``unroutable``.

When the watchdog fires, the simulator's :class:`DeadlockForensics`
snapshot is embedded in the trial so a disagreement report carries the
wait-cycle witness; ``witness_in_core`` records whether the witness wires
lie inside the CDG's cyclic core.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field

import networkx as nx

from repro.analyze.engine import static_errors as _static_errors
from repro.analyze.rings import unbroken_wrap_rings
from repro.analyze.unit import DesignUnit
from repro.cdg.graph import build_routing_cdg, build_turn_cdg
from repro.cdg.verify import Verdict, cyclic_core, verdict_for
from repro.core.arbitrary import (
    ArbitraryVerdict,
    dependency_relation_from_routing,
    dependency_relation_from_turns,
    existence_verdict,
)
from repro.core.channel import Channel
from repro.core.sequence import PartitionSequence
from repro.core.theorems import audit_turns
from repro.core.turns import TurnSet
from repro.errors import ConfigError, EbdaError, RoutingError, SimulationError
from repro.fuzz.design import FuzzDesign
from repro.routing.base import Candidate, RoutingFunction
from repro.routing.table import TurnTableRouting
from repro.sim.metrics import MetricsCollector
from repro.sim.network import NetworkSimulator
from repro.sim.patterns import hotspot, rotate90, tornado, uniform
from repro.sim.traffic import ScriptedTraffic, TrafficConfig, TrafficGenerator
from repro.sim.vector import VectorSimulator
from repro.topology.base import Coord, Topology
from repro.topology.classes import ClassRule
from repro.topology.wires import Wire

__all__ = [
    "DifferentialOracle",
    "HARD_DISAGREEMENTS",
    "SimProfile",
    "TrialResult",
    "fast_profile",
]

#: Classifications that mean the oracles contradict each other.
HARD_DISAGREEMENTS = (
    "theorem-safe-cdg-cyclic",
    "cdg-acyclic-sim-deadlock",
    "static-clean-theorem-unsafe",
    "static-error-theorem-safe",
    "valid-design-rejected",
    "valid-design-unroutable",
    "backend-divergence",
    "arbitrary-safe-cdg-cyclic",
    "arbitrary-unsafe-cdg-acyclic",
    "oracle-error",
)


@dataclass(frozen=True)
class SimProfile:
    """Budgets for the simulation oracle (picklable; ships to workers)."""

    #: Crafted-ring run: worms sized ``buffer_depth + 2``, watchdog cycles.
    crafted_watchdog: int = 50
    crafted_buffer_depth: int = 2
    #: Adversarial runs: cycles / rate / length / buffers / watchdog / seeds.
    cycles: int = 600
    injection_rate: float = 0.32
    packet_length: int = 8
    buffer_depth: int = 2
    watchdog: int = 200
    seeds: tuple[int, ...] = (0,)
    #: Fraction of hotspot traffic aimed at the first node.
    hotspot_fraction: float = 0.5
    #: Simple-cycle enumeration budget when picking a crafted ring.
    cycle_search_limit: int = 400
    #: Mirror every simulation run on the vector backend and require
    #: bit-identical stats (the ``backend-divergence`` oracle).
    compare_backends: bool = True


def fast_profile() -> SimProfile:
    """A cheaper profile for property tests and smoke runs."""
    return SimProfile(cycles=250, watchdog=120, seeds=(0,))


@dataclass
class TrialResult:
    """Everything one differential trial produced (JSON-safe via to_dict)."""

    design: FuzzDesign
    theorem_safe: bool = False
    theorem_violations: tuple[str, ...] = ()
    #: Verdict of the static analyzer's theorem-mirror rules (EBDA001-005).
    static_safe: bool = False
    static_errors: tuple[str, ...] = ()
    cdg_acyclic: bool = False
    cdg_wires: int = 0
    cdg_dependencies: int = 0
    cdg_cycle: tuple[str, ...] = ()
    #: Verdict of the arbitrary-network existence condition (fifth oracle).
    arbitrary_safe: bool = False
    arbitrary_core: int = 0
    arbitrary_cycle: tuple[str, ...] = ()
    sim_deadlock: bool = False
    sim_unroutable: bool = False
    sim_runs: tuple[dict, ...] = ()
    forensics: dict | None = None
    #: Witness wires ⊆ CDG cyclic core?  None when either oracle is quiet.
    witness_in_core: bool | None = None
    #: Did the vector backend reproduce every run bit-identically?
    #: None when no run could be mirrored (vector-unsupported config).
    backend_agree: bool | None = None
    backend_divergences: tuple[str, ...] = ()
    classification: str = "oracle-error"
    disagreement: str | None = None
    error: str | None = None

    @property
    def all_flagged(self) -> bool:
        """Did all five oracles independently flag the design unsafe?"""
        return (
            not self.theorem_safe
            and not self.static_safe
            and not self.cdg_acyclic
            and not self.arbitrary_safe
            and self.sim_deadlock
        )

    def to_dict(self) -> dict:
        return {
            "design": self.design.to_dict(),
            "theorem_safe": self.theorem_safe,
            "theorem_violations": list(self.theorem_violations),
            "static_safe": self.static_safe,
            "static_errors": list(self.static_errors),
            "cdg_acyclic": self.cdg_acyclic,
            "cdg_wires": self.cdg_wires,
            "cdg_dependencies": self.cdg_dependencies,
            "cdg_cycle": list(self.cdg_cycle),
            "arbitrary_safe": self.arbitrary_safe,
            "arbitrary_core": self.arbitrary_core,
            "arbitrary_cycle": list(self.arbitrary_cycle),
            "sim_deadlock": self.sim_deadlock,
            "sim_unroutable": self.sim_unroutable,
            "sim_runs": list(self.sim_runs),
            "forensics": self.forensics,
            "witness_in_core": self.witness_in_core,
            "backend_agree": self.backend_agree,
            "backend_divergences": list(self.backend_divergences),
            "classification": self.classification,
            "disagreement": self.disagreement,
            "error": self.error,
        }


class CycleRouting(RoutingFunction):
    """Deterministic routing along one concrete CDG cycle.

    Every offered move is a wire of the cycle, and every cycle edge is a
    straight-through or design-allowed transition by construction — so the
    relation is a sub-relation of the design's, and any deadlock it
    produces is a genuine deadlock of the design itself.  Requires a
    node-simple cycle (distinct source routers), which makes both the
    injection map and the (router, in-channel) next-hop map unambiguous.
    """

    def __init__(
        self,
        topology: Topology,
        cycle: tuple[Wire, ...],
        classes: tuple[Channel, ...],
        rule: ClassRule,
    ) -> None:
        super().__init__(topology, rule)
        self.cycle = cycle
        self._classes = tuple(classes)
        self._inject: dict[Coord, Wire] = {w.src: w for w in cycle}
        self._next: dict[tuple[Coord, Channel], Wire] = {}
        k = len(cycle)
        for i, wire in enumerate(cycle):
            self._next[(wire.dst, wire.channel)] = cycle[(i + 1) % k]

    @property
    def channel_classes(self) -> tuple[Channel, ...]:
        return self._classes

    def candidates(
        self, cur: Coord, dst: Coord, in_channel: Channel | None
    ) -> list[Candidate]:
        if cur == dst:
            return []
        if in_channel is None:
            wire = self._inject.get(cur)
        else:
            wire = self._next.get((cur, in_channel))
        if wire is None:
            return []
        return [(wire.dst, wire.channel)]


class DifferentialOracle:
    """Runs one design through all five verdict paths and classifies."""

    def __init__(self, profile: SimProfile | None = None) -> None:
        self.profile = profile or SimProfile()

    # -- individual oracles ------------------------------------------------

    @staticmethod
    def _native(design: FuzzDesign) -> bool:
        """Is the design judged through a native engine's routed relation?"""
        return design.engine != "table"

    def theorem_verdict(
        self, design: FuzzDesign
    ) -> tuple[bool, tuple[str, ...]]:
        """(safe, violations) from the class-level theorem checks."""
        seq, turnset = design.compile()
        reports = audit_turns(seq, sorted(turnset.turns))
        violations = [v for rep in reports for v in rep.violations]
        if not self._native(design):
            violations.extend(
                unbroken_wrap_rings(
                    design.topology(), seq.all_channels, turnset, design.class_rule()
                )
            )
        return (not violations, tuple(violations))

    def static_verdict(self, design: FuzzDesign) -> tuple[bool, tuple[str, ...]]:
        """(safe, error strings) from the static analyzer's mirror rules."""
        seq, turnset = design.compile()
        unit = DesignUnit(
            sequence=seq,
            turnset=turnset,
            name=design.label or seq.arrow_notation(),
            # Native engines: class-level rules only — the topology-aware
            # rules model table legality, not engine legality.
            topology=None if self._native(design) else design.topology(),
            rule=design.class_rule(),
        )
        errors = _static_errors(unit)
        return (not errors, errors)

    def cdg_graph(self, design: FuzzDesign) -> "nx.DiGraph":
        seq, turnset = design.compile()
        topology = design.topology()
        rule = design.class_rule()
        if self._native(design):
            return build_routing_cdg(topology, design.engine_routing(topology), rule)
        return build_turn_cdg(topology, turnset, seq.all_channels, rule)

    def cdg_verdict(self, design: FuzzDesign) -> Verdict:
        return verdict_for(self.cdg_graph(design))

    def arbitrary_verdict(self, design: FuzzDesign) -> ArbitraryVerdict:
        """The fifth oracle: the arbitrary-network existence condition."""
        seq, turnset = design.compile()
        topology = design.topology()
        rule = design.class_rule()
        if self._native(design):
            relation = dependency_relation_from_routing(
                topology, design.engine_routing(topology), rule
            )
        else:
            relation = dependency_relation_from_turns(
                topology, turnset, seq.all_channels, rule
            )
        return existence_verdict(relation)

    # -- the full trial ----------------------------------------------------

    def run(self, design: FuzzDesign) -> TrialResult:
        result = TrialResult(design=design)
        try:
            self._run(design, result)
        except Exception as exc:  # noqa: BLE001 — an oracle crash IS a finding
            result.classification = "oracle-error"
            result.disagreement = "oracle-error"
            result.error = "".join(
                traceback.format_exception_only(type(exc), exc)
            ).strip()
        return result

    def _run(self, design: FuzzDesign, result: TrialResult) -> None:
        seq, turnset = design.compile()
        topology = design.topology()
        rule = design.class_rule()
        native = self._native(design)
        native_routing = design.engine_routing(topology) if native else None

        reports = audit_turns(seq, sorted(turnset.turns))
        violations = [v for rep in reports for v in rep.violations]
        if not native:
            violations.extend(
                unbroken_wrap_rings(topology, seq.all_channels, turnset, rule)
            )
        result.theorem_safe = not violations
        result.theorem_violations = tuple(violations)

        unit = DesignUnit(
            sequence=seq,
            turnset=turnset,
            name=design.label or seq.arrow_notation(),
            topology=None if native else topology,
            rule=rule,
        )
        static = _static_errors(unit)
        result.static_safe = not static
        result.static_errors = static

        if native:
            graph = build_routing_cdg(topology, native_routing, rule)
        else:
            graph = build_turn_cdg(topology, turnset, seq.all_channels, rule)
        verdict = verdict_for(graph)
        result.cdg_acyclic = verdict.acyclic
        result.cdg_wires = verdict.wires
        result.cdg_dependencies = verdict.dependencies
        result.cdg_cycle = tuple(str(w) for w in verdict.cycle)

        if native:
            relation = dependency_relation_from_routing(
                topology, native_routing, rule
            )
        else:
            relation = dependency_relation_from_turns(
                topology, turnset, seq.all_channels, rule
            )
        arbitrary = existence_verdict(relation)
        result.arbitrary_safe = arbitrary.safe
        result.arbitrary_core = arbitrary.core
        result.arbitrary_cycle = arbitrary.cycle

        runs, forensics = self._simulate(
            design, seq, turnset, topology, rule, graph, verdict, native_routing
        )
        result.sim_runs = tuple(runs)
        result.sim_deadlock = any(r.get("deadlocked") for r in runs)
        result.sim_unroutable = any(r.get("unroutable") for r in runs)
        result.forensics = forensics.to_dict() if forensics else None

        mirrored = [r for r in runs if "backend_agree" in r]
        result.backend_divergences = tuple(
            d for r in mirrored for d in r.get("backend_divergences", ())
        )
        if mirrored:
            result.backend_agree = not result.backend_divergences

        if forensics is not None and not verdict.acyclic:
            core = {str(w) for w in cyclic_core(graph)}
            held = {w for wires in forensics.witness_channels for w in wires}
            result.witness_in_core = bool(held) and held <= core

        result.classification, result.disagreement = self._classify(
            design.labeled_valid,
            result.theorem_safe,
            result.cdg_acyclic,
            result.sim_deadlock,
            result.sim_unroutable,
            static_safe=result.static_safe,
            arbitrary_safe=result.arbitrary_safe,
        )
        if result.backend_agree is False:
            # Two engines claiming cycle-exactness disagreed: that trumps
            # whatever the (now untrustworthy) simulation verdict implied.
            result.classification = "backend-divergence"
            result.disagreement = "backend-divergence"

    @staticmethod
    def _classify(
        labeled_valid: bool,
        theorem_safe: bool,
        cdg_acyclic: bool,
        deadlock: bool,
        unroutable: bool,
        static_safe: bool | None = None,
        arbitrary_safe: bool | None = None,
    ) -> tuple[str, str | None]:
        # The static analyzer's mirror rules share the theorem oracle's
        # violation streams — a split verdict is an analyzer wiring bug.
        if static_safe is not None and static_safe != theorem_safe:
            kind = (
                "static-clean-theorem-unsafe"
                if static_safe
                else "static-error-theorem-safe"
            )
            return kind, kind
        # The existence condition decides the same question as concrete-CDG
        # acyclicity by an independent algorithm — any split is a bug.
        if arbitrary_safe is not None and arbitrary_safe != cdg_acyclic:
            kind = (
                "arbitrary-safe-cdg-cyclic"
                if arbitrary_safe
                else "arbitrary-unsafe-cdg-acyclic"
            )
            return kind, kind
        if theorem_safe and not cdg_acyclic:
            return "theorem-safe-cdg-cyclic", "theorem-safe-cdg-cyclic"
        if cdg_acyclic and deadlock:
            return "cdg-acyclic-sim-deadlock", "cdg-acyclic-sim-deadlock"
        if labeled_valid and not theorem_safe:
            return "valid-design-rejected", "valid-design-rejected"
        if theorem_safe:  # and acyclic, no deadlock
            if unroutable:
                if labeled_valid:
                    return "valid-design-unroutable", "valid-design-unroutable"
                return "unroutable", None
            return "safe-confirmed", None
        # Theorems reject from here on (and the design is labeled mutant).
        if cdg_acyclic:
            return "unsafe-conservative", None
        if deadlock:
            return "unsafe-flagged", None
        if unroutable:
            return "unroutable", None
        return "cyclic-not-triggered", None

    # -- simulation oracle -------------------------------------------------

    def _simulate(
        self,
        design: FuzzDesign,
        seq: PartitionSequence,
        turnset: TurnSet,
        topology: Topology,
        rule: ClassRule,
        graph: "nx.DiGraph",
        verdict: Verdict,
        native_routing: RoutingFunction | None = None,
    ) -> tuple[list[dict], object]:
        profile = self.profile
        runs: list[dict] = []
        forensics = None

        crafted_classes = (
            native_routing.channel_classes
            if native_routing is not None
            else seq.all_channels
        )
        if not verdict.acyclic:
            crafted, crafted_forensics = self._crafted_ring_run(
                topology, crafted_classes, rule, graph
            )
            if crafted is not None:
                runs.append(crafted)
                forensics = forensics or crafted_forensics
                if crafted.get("deadlocked"):
                    return runs, forensics

        if native_routing is not None:
            routing: RoutingFunction = native_routing
        else:
            table_kwargs: dict = {}
            if design.topology_kind == "irregular":
                # Minimal directions may dead-end around failed links;
                # route by BFS progress with a turn-legal escape fallback.
                table_kwargs = {"directions": "progressive", "fallback": "escape"}
            try:
                routing = TurnTableRouting(
                    topology, seq, rule, turnset=turnset, validate=False,
                    **table_kwargs,
                )
            except EbdaError as exc:
                runs.append(
                    {"kind": "routing-build", "unroutable": True, "error": str(exc)}
                )
                return runs, forensics

        nodes = sorted(topology.nodes)
        patterns: list[tuple[str, object]] = []
        if design.topology_kind == "torus":
            patterns.append(("tornado", tornado))
        elif (
            design.topology_kind == "mesh"
            and len(design.shape) >= 2
            and design.shape[0] == design.shape[1]
        ):
            patterns.append(("rotate90", rotate90))
        else:
            patterns.append(("uniform", uniform))
        patterns.append(
            ("hotspot", hotspot([nodes[0]], profile.hotspot_fraction))
        )

        for seed in profile.seeds:
            for name, pattern in patterns:
                run = self._adversarial_run(
                    topology, routing, rule, name, pattern, seed
                )
                runs.append(run)
                if run.get("deadlocked"):
                    if forensics is None and run.pop("_forensics", None):
                        forensics = run.pop("_forensics_obj", None)
                    return runs, forensics
        return runs, forensics

    def _adversarial_run(
        self,
        topology: Topology,
        routing: RoutingFunction,
        rule: ClassRule,
        pattern_name: str,
        pattern,
        seed: int,
    ) -> dict:
        profile = self.profile
        collector = MetricsCollector(sample_every=max(1, profile.cycles))
        sim = NetworkSimulator(
            topology,
            routing,
            rule,
            buffer_depth=profile.buffer_depth,
            watchdog=profile.watchdog,
            seed=seed,
            metrics=collector,
        )
        traffic = TrafficGenerator(
            topology,
            TrafficConfig(
                injection_rate=profile.injection_rate,
                packet_length=profile.packet_length,
                pattern=pattern,
                seed=seed,
            ),
        )
        record: dict = {"kind": "adversarial", "pattern": pattern_name, "seed": seed}
        ref_stats = ref_error = None
        try:
            stats = ref_stats = sim.run(profile.cycles, traffic)
        except (RoutingError, SimulationError) as exc:
            ref_error = exc
            record.update(unroutable=True, error=str(exc))
        else:
            record.update(
                deadlocked=stats.deadlocked,
                cycles=stats.cycles,
                delivered=stats.packets_delivered,
            )
            if stats.deadlocked and collector.forensics is not None:
                record["_forensics"] = True
                record["_forensics_obj"] = collector.forensics
        if profile.compare_backends:
            self._mirror_on_vector(
                record,
                topology,
                routing,
                rule,
                cycles=profile.cycles,
                buffer_depth=profile.buffer_depth,
                watchdog=profile.watchdog,
                seed=seed,
                make_traffic=lambda: TrafficGenerator(
                    topology,
                    TrafficConfig(
                        injection_rate=profile.injection_rate,
                        packet_length=profile.packet_length,
                        pattern=pattern,
                        seed=seed,
                    ),
                ),
                ref_stats=ref_stats,
                ref_error=ref_error,
            )
        return record

    def _crafted_ring_run(
        self,
        topology: Topology,
        classes: tuple[Channel, ...],
        rule: ClassRule,
        graph: "nx.DiGraph",
    ) -> tuple[dict | None, object]:
        profile = self.profile
        cycle = self._pick_cycle(graph)
        if cycle is None:
            return None, None
        routing = CycleRouting(topology, cycle, tuple(classes), rule)
        depth = profile.crafted_buffer_depth
        length = depth + 2
        k = len(cycle)
        script = []
        for i, wire in enumerate(cycle):
            dst = cycle[(i + 1) % k].dst  # two hops along the ring
            if dst == wire.src:
                return None, None
            script.append((wire.src, dst, length))
        collector = MetricsCollector(sample_every=profile.crafted_watchdog)
        sim = NetworkSimulator(
            topology,
            routing,
            rule,
            buffer_depth=depth,
            watchdog=profile.crafted_watchdog,
            seed=0,
            metrics=collector,
        )
        record: dict = {"kind": "crafted-ring", "ring": [str(w) for w in cycle]}
        ref_stats = ref_error = None
        try:
            stats = ref_stats = sim.run(
                profile.crafted_watchdog * 5, ScriptedTraffic({0: script})
            )
        except (RoutingError, SimulationError) as exc:
            ref_error = exc
            record.update(unroutable=True, error=str(exc))
        else:
            record.update(deadlocked=stats.deadlocked, cycles=stats.cycles)
        if profile.compare_backends:
            self._mirror_on_vector(
                record,
                topology,
                routing,
                rule,
                cycles=profile.crafted_watchdog * 5,
                buffer_depth=depth,
                watchdog=profile.crafted_watchdog,
                seed=0,
                make_traffic=lambda: ScriptedTraffic({0: script}),
                ref_stats=ref_stats,
                ref_error=ref_error,
            )
        if ref_error is not None:
            return record, None
        return record, collector.forensics

    def _mirror_on_vector(
        self,
        record: dict,
        topology: Topology,
        routing: RoutingFunction,
        rule: ClassRule,
        *,
        cycles: int,
        buffer_depth: int,
        watchdog: int,
        seed: int,
        make_traffic,
        ref_stats,
        ref_error,
    ) -> None:
        """Replay a reference run on the vector backend and diff the stats.

        Annotates ``record`` with ``backend_agree`` (and the divergence
        strings when the engines split).  A config outside the vector
        engine's scope leaves the record unannotated — nothing to compare.
        """
        try:
            sim = VectorSimulator(
                topology,
                routing,
                rule,
                buffer_depth=buffer_depth,
                watchdog=watchdog,
                seed=seed,
            )
        except ConfigError:
            return
        divergences: list[str] = []
        try:
            stats = sim.run(cycles, make_traffic())
        except (RoutingError, SimulationError) as exc:
            if ref_error is None:
                divergences.append(
                    f"vector raised {type(exc).__name__} ({exc}) where the"
                    " reference completed"
                )
            elif type(exc) is not type(ref_error):
                divergences.append(
                    f"vector raised {type(exc).__name__} where the reference"
                    f" raised {type(ref_error).__name__}"
                )
        else:
            if ref_error is not None:
                divergences.append(
                    "vector completed where the reference raised"
                    f" {type(ref_error).__name__} ({ref_error})"
                )
            else:
                ref_dict, vec_dict = ref_stats.to_dict(), stats.to_dict()
                if ref_dict != vec_dict:
                    keys = sorted(
                        k for k in ref_dict if ref_dict[k] != vec_dict.get(k)
                    )
                    divergences.append(
                        f"stats differ on {', '.join(keys)}"
                        f" (kind={record.get('kind')},"
                        f" pattern={record.get('pattern')}, seed={seed})"
                    )
        record["backend_agree"] = not divergences
        if divergences:
            record["backend_divergences"] = tuple(divergences)

    def _pick_cycle(self, graph: "nx.DiGraph") -> tuple[Wire, ...] | None:
        """A small node-simple CDG cycle (distinct routers), if any exists.

        Worms can only be parked unambiguously along a cycle whose wires
        start at distinct routers and span at least three of them; a
        2-wire back-and-forth (e.g. a lone descending U-turn) has no such
        arrangement — the caller then falls back to adversarial traffic.
        """
        limit = self.profile.cycle_search_limit
        for bound in (3, 4, 6, 8, 12):
            candidates = []
            seen = 0
            for nodes in nx.simple_cycles(graph, length_bound=bound):
                seen += 1
                if seen > limit:
                    break
                if len(nodes) < 3:
                    continue
                sources = {w.src for w in nodes}
                if len(sources) != len(nodes):
                    continue
                candidates.append(_canonical_rotation(tuple(nodes)))
            if candidates:
                return min(
                    candidates,
                    key=lambda c: (len(c), tuple(str(w) for w in c)),
                )
        return None


def _canonical_rotation(cycle: tuple[Wire, ...]) -> tuple[Wire, ...]:
    """Rotate a cycle to start at its lexicographically smallest wire.

    ``nx.simple_cycles`` emits an arbitrary rotation (it varies with the
    process hash seed), so selection must compare rotation-invariant forms
    to keep crafted-ring runs byte-for-byte reproducible across workers.
    """
    start = min(range(len(cycle)), key=lambda i: str(cycle[i]))
    return cycle[start:] + cycle[:start]
