"""The instantiation oracle: symbolic certificates vs the concrete linter.

The sixth fuzz oracle is different in kind from the other five: instead
of judging one random design with several engines, it judges the
*symbolic prover* — every parametric family's certificates are
instantiated at random ``(n, k)`` points and cross-checked against the
concrete analyzer (:func:`repro.analyze.symbolic.differential_gate`).
A disagreement means the closed-form derivation and the concrete rule
implementation have diverged, which is precisely the class of bug no
single-engine oracle can see.

Wired into ``repro fuzz --instantiations N`` and the CI gate
(``tools/ci_certify_check.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.analyze.symbolic import Disagreement as PointDisagreement
from repro.analyze.symbolic import differential_gate

__all__ = ["InstantiationReport", "PointDisagreement", "run_instantiations"]


@dataclass(frozen=True)
class InstantiationReport:
    """Outcome of one instantiation-oracle campaign."""

    points: int
    families: tuple[str, ...]
    disagreements: tuple[PointDisagreement, ...]
    elapsed_s: float

    @property
    def ok(self) -> bool:
        return not self.disagreements

    def summary(self) -> str:
        verdict = (
            "all symbolic verdicts confirmed"
            if self.ok
            else f"{len(self.disagreements)} DISAGREEMENT(S)"
        )
        lines = [
            f"instantiation oracle: {self.points} points over"
            f" {len(self.families)} families in {self.elapsed_s:.1f}s —"
            f" {verdict}"
        ]
        lines.extend(f"  {d.describe()}" for d in self.disagreements)
        return "\n".join(lines)


def run_instantiations(
    points: int = 200,
    *,
    seed: int = 0,
    families: tuple[str, ...] | None = None,
) -> InstantiationReport:
    """Run the symbolic-vs-concrete differential at random points."""
    start = time.perf_counter()
    result = differential_gate(families, points=points, seed=seed)
    return InstantiationReport(
        points=result.points,
        families=result.families,
        disagreements=result.disagreements,
        elapsed_s=time.perf_counter() - start,
    )
