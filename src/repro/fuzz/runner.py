"""The fuzzing campaign driver: fan out trials, shrink and persist findings.

:func:`run_fuzz` generates seeded designs, runs each through the
:class:`~repro.fuzz.oracle.DifferentialOracle` (fanning batches out over a
:class:`~repro.sim.parallel.SweepEngine` worker pool when one is given),
and collects a :class:`FuzzReport`.  Any trial whose verdicts disagree is
delta-debugged down to a minimal witness that *still reproduces the same
disagreement* and — when a corpus directory is given — persisted with its
generator seed and trial index so the exact design replays forever.

:func:`replay_corpus` re-runs every saved witness; :func:`self_check`
injects a synthetic disagreement (a mutant falsely labeled valid) and
proves the whole detect → shrink → persist pipeline catches it and
minimises it to within the 2-ary 2-mesh witness bound.
"""

from __future__ import annotations

import json
import time
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.fuzz.corpus import CorpusEntry, load_corpus, replay_entry, save_entry
from repro.fuzz.design import FuzzDesign, Mutation
from repro.fuzz.generator import DEFAULT_FAMILIES, DesignGenerator
from repro.fuzz.oracle import DifferentialOracle, SimProfile, TrialResult
from repro.fuzz.shrink import ShrinkResult, shrink, within_witness_bound
from repro.obs.ledger import record_run
from repro.obs.metrics import REGISTRY
from repro.obs.trace import current_tracer
from repro.sim.parallel import SweepEngine

__all__ = [
    "Disagreement",
    "FuzzReport",
    "replay_corpus",
    "run_fuzz",
    "self_check",
]


def _run_trial(payload: tuple[dict, SimProfile]) -> TrialResult:
    """One differential trial (module-level so worker pools can pickle it)."""
    design_dict, profile = payload
    oracle = DifferentialOracle(profile)
    return oracle.run(FuzzDesign.from_dict(design_dict))


@dataclass
class Disagreement:
    """A hard oracle disagreement, with its minimised witness."""

    trial: int
    classification: str
    original: FuzzDesign
    shrunk: ShrinkResult
    error: str | None = None
    corpus_path: str | None = None

    def to_dict(self) -> dict:
        return {
            "trial": self.trial,
            "classification": self.classification,
            "original": self.original.to_dict(),
            "shrunk": self.shrunk.to_dict(),
            "error": self.error,
            "corpus_path": self.corpus_path,
        }


@dataclass
class FuzzReport:
    """Everything one fuzzing campaign produced."""

    seed: int
    runs_requested: int
    runs_completed: int = 0
    elapsed_s: float = 0.0
    counts: dict = field(default_factory=dict)
    disagreements: list = field(default_factory=list)
    trials: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """No hard disagreement surfaced."""
        return not self.disagreements

    def summary(self) -> str:
        parts = [
            f"fuzz seed={self.seed}:"
            f" {self.runs_completed}/{self.runs_requested} trials"
            f" in {self.elapsed_s:.1f}s"
        ]
        for cls in sorted(self.counts):
            parts.append(f"  {cls}: {self.counts[cls]}")
        if self.disagreements:
            parts.append(f"  HARD DISAGREEMENTS: {len(self.disagreements)}")
            for d in self.disagreements:
                parts.append(
                    f"    trial {d.trial} [{d.classification}]"
                    f" -> {d.shrunk.design.describe()}"
                )
        else:
            parts.append("  oracles agree on every trial")
        return "\n".join(parts)

    def to_jsonl(self, path: str | Path) -> Path:
        """One JSON line per trial, then one ``report`` line with totals."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as fh:
            for i, trial in enumerate(self.trials):
                fh.write(
                    json.dumps({"kind": "trial", "trial": i, **trial.to_dict()})
                    + "\n"
                )
            fh.write(
                json.dumps(
                    {
                        "kind": "report",
                        "seed": self.seed,
                        "runs_requested": self.runs_requested,
                        "runs_completed": self.runs_completed,
                        "elapsed_s": self.elapsed_s,
                        "counts": self.counts,
                        "ok": self.ok,
                        "disagreements": [
                            d.to_dict() for d in self.disagreements
                        ],
                    }
                )
                + "\n"
            )
        return path


def run_fuzz(
    runs: int = 200,
    seed: int = 0,
    *,
    budget_s: float | None = None,
    corpus_dir: str | Path | None = None,
    engine: SweepEngine | None = None,
    profile: SimProfile | None = None,
    generator: DesignGenerator | None = None,
    families: tuple[str, ...] | None = None,
    progress=None,
    heartbeat=None,
) -> FuzzReport:
    """Run a differential fuzzing campaign.

    Trials are generated and judged in batches; ``budget_s`` is checked
    between batches, so a campaign is cut short cleanly rather than
    mid-trial.  Each hard disagreement is shrunk (preserving its exact
    classification) and, with ``corpus_dir`` set, saved for replay.

    ``families`` selects the topology families the generator draws from
    (:data:`repro.fuzz.design.FAMILIES` members); it is a convenience for
    ``generator=DesignGenerator(seed, families=...)`` and is ignored when
    an explicit ``generator`` is passed.

    ``progress`` is an optional ``callable(str)`` invoked with one status
    line per completed batch (trials done, disagreements so far, elapsed);
    ``heartbeat`` is an optional
    :class:`~repro.obs.heartbeat.HeartbeatWriter` beaten per batch so
    ``repro top`` can watch the campaign live.  Both are observational
    only — they never change which trials run or how they are judged.
    """
    profile = profile or SimProfile()
    if generator is None:
        generator = DesignGenerator(
            seed, families=tuple(families) if families else DEFAULT_FAMILIES
        )
    jobs = engine.jobs if engine is not None else 1
    batch_size = max(8, jobs * 4)
    started = time.monotonic()
    report = FuzzReport(seed=seed, runs_requested=runs)
    counts: Counter = Counter()
    tracer = current_tracer()
    trials_metric = REGISTRY.counter(
        "repro_fuzz_trials_total", help="Differential fuzz trials judged."
    )
    disagreements_metric = REGISTRY.counter(
        "repro_fuzz_disagreements_total",
        help="Hard oracle disagreements found by fuzzing.",
    )

    with tracer.span("fuzz.campaign", runs=runs, seed=seed, jobs=jobs) as root:
        trial = 0
        batch_no = 0
        while trial < runs:
            if budget_s is not None and time.monotonic() - started >= budget_s:
                break
            with tracer.span("fuzz.batch", batch=batch_no, start=trial) as bspan:
                batch = generator.designs(min(batch_size, runs - trial), start=trial)
                payloads = [(d.to_dict(), profile) for d in batch]
                if engine is not None:
                    results = engine.map_tasks(_run_trial, payloads)
                else:
                    results = [_run_trial(p) for p in payloads]
                found = 0
                for offset, result in enumerate(results):
                    counts[result.classification] += 1
                    report.trials.append(result)
                    if result.disagreement:
                        found += 1
                        with tracer.span("fuzz.shrink", trial=trial + offset):
                            report.disagreements.append(
                                _handle_disagreement(
                                    trial + offset, result, profile, corpus_dir, seed
                                )
                            )
                bspan.set(trials=len(batch), disagreements=found)
            trials_metric.inc(len(batch))
            disagreements_metric.inc(found)
            trial += len(batch)
            batch_no += 1
            report.runs_completed = trial
            elapsed = time.monotonic() - started
            if heartbeat is not None:
                heartbeat.beat(
                    trial,
                    batch=batch_no,
                    disagreements=len(report.disagreements),
                )
            if progress is not None:
                progress(
                    f"fuzz: {trial}/{runs} trials,"
                    f" {len(report.disagreements)} disagreement(s),"
                    f" {elapsed:.1f}s elapsed"
                )
        root.set(
            completed=trial,
            disagreements=len(report.disagreements),
        )

    report.counts = dict(counts)
    report.elapsed_s = time.monotonic() - started
    if heartbeat is not None:
        heartbeat.finish(trial, disagreements=len(report.disagreements))
    spec = f"runs={runs},seed={seed}"
    gen_families = tuple(getattr(generator, "families", ()) or ())
    if gen_families and gen_families != DEFAULT_FAMILIES:
        spec += f",families={'+'.join(gen_families)}"
    record_run(
        "fuzz",
        spec=spec,
        seed=seed,
        outcome="ok" if report.ok else "disagreement",
        payload={
            "runs_completed": report.runs_completed,
            "counts": report.counts,
            "disagreements": [
                {"trial": d.trial, "classification": d.classification}
                for d in report.disagreements
            ],
        },
        wall_s=report.elapsed_s,
    )
    return report


def _handle_disagreement(
    trial: int,
    result: TrialResult,
    profile: SimProfile,
    corpus_dir: str | Path | None,
    seed: int,
) -> Disagreement:
    """Shrink a disagreeing design and persist the witness."""
    oracle = DifferentialOracle(profile)
    target = result.classification

    def same_disagreement(candidate: FuzzDesign) -> bool:
        return oracle.run(candidate).classification == target

    shrunk = shrink(result.design, same_disagreement)
    disagreement = Disagreement(
        trial=trial,
        classification=target,
        original=result.design,
        shrunk=shrunk,
        error=result.error,
    )
    if corpus_dir is not None:
        entry = CorpusEntry(
            design=shrunk.design,
            expect=target,
            note=f"minimised from fuzz trial {trial} ({result.design.describe()})",
            origin={"seed": seed, "trial": trial, "found-by": "run_fuzz"},
        )
        disagreement.corpus_path = str(save_entry(entry, corpus_dir))
    return disagreement


def replay_corpus(
    corpus_dir: str | Path,
    *,
    profile: SimProfile | None = None,
) -> list[tuple[CorpusEntry, bool, TrialResult]]:
    """Re-judge every saved witness; (entry, still_detected, trial) each."""
    oracle = DifferentialOracle(profile or SimProfile())
    out = []
    for entry in load_corpus(corpus_dir):
        detected, trial = replay_entry(entry, oracle)
        out.append((entry, detected, trial))
    return out


def self_check(profile: SimProfile | None = None) -> tuple[bool, str]:
    """Prove the detect → shrink pipeline works, end to end.

    Injects a synthetic disagreement — a Theorem-1-violating mutant
    *falsely labeled valid*, which the oracle must classify as the hard
    ``valid-design-rejected`` — then shrinks it and checks the witness
    lands within the 2-ary 2-mesh bound.  A fuzzer whose own alarm wiring
    is broken would pass every campaign silently; this catches that.
    """
    oracle = DifferentialOracle(profile or SimProfile())
    injected = FuzzDesign(
        topology_kind="mesh",
        shape=(4, 4),
        sequence="X+ X- Y+ -> Y-",
        rule="none",
        mutations=(
            Mutation("duplicate-pair", partition=0, channels="Y2+ Y2-"),
        ),
        label="valid:injected-self-check",
    )
    result = oracle.run(injected)
    if result.classification != "valid-design-rejected":
        return (
            False,
            "self-check FAILED: injected disagreement classified as"
            f" {result.classification!r}, expected 'valid-design-rejected'",
        )

    def same(candidate: FuzzDesign) -> bool:
        return oracle.run(candidate).classification == "valid-design-rejected"

    shrunk = shrink(injected, same)
    if not within_witness_bound(shrunk.design):
        return (
            False,
            "self-check FAILED: witness did not shrink within the 2-ary"
            f" 2-mesh bound: {shrunk.design.describe()}",
        )
    return (
        True,
        "self-check ok: injected disagreement detected and shrunk to"
        f" {shrunk.design.describe()} in {shrunk.steps} steps",
    )
