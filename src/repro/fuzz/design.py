"""The fuzzer's design space: serialisable EbDa designs plus invalid mutants.

A :class:`FuzzDesign` is a *recipe*, not a live object: topology kind and
shape, the base partition sequence in arrow notation, a named class rule
and a tuple of :class:`Mutation` edits.  Keeping the recipe plain data
makes every trial picklable (for the worker fan-out), JSON-serialisable
(for the regression corpus) and exactly replayable from a generator seed.

Mutations model the known ways a design can be *wrong*:

* ``duplicate-pair`` — extra channels grafted into a partition so it
  covers a second complete D-pair (Theorem 1 violation);
* ``backward-transition`` — every turn from a later partition back into an
  earlier one (Theorem 3 violation, the "shuffled transition order" case);
* ``add-turn`` — one explicit extra turn, e.g. a descending U-turn
  (Theorem 2 violation);
* ``drop-channel`` — a channel removed from a partition (connectivity /
  dropped-escape probes; on a dateline torus this can leave wrap links
  bare or rings unbroken).

Compilation deliberately bypasses theorem validation
(:func:`~repro.core.extraction.extract_turns` with ``validate=False``) —
judging the result is the oracles' job, not the constructor's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.channel import Channel
from repro.core.extraction import extract_turns
from repro.core.partition import Partition
from repro.core.sequence import PartitionSequence
from repro.core.turns import Turn, TurnSet
from repro.errors import EbdaError
from repro.topology.base import Topology
from repro.topology.classes import NAMED_RULES, ClassRule
from repro.topology.mesh import Mesh
from repro.topology.torus import Torus

__all__ = ["MUTATION_KINDS", "FuzzDesign", "Mutation"]

#: Supported mutation kinds, in generator rotation order.
MUTATION_KINDS = (
    "duplicate-pair",
    "backward-transition",
    "add-turn",
    "drop-channel",
)


@dataclass(frozen=True)
class Mutation:
    """One deliberate edit applied to a base design (see module docstring)."""

    kind: str
    #: Target partition index (``duplicate-pair`` / ``drop-channel``).
    partition: int = -1
    #: Space-separated channel specs to add (``duplicate-pair``) or the
    #: single spec to remove (``drop-channel``).
    channels: str = ""
    #: Source/destination partition indices (``backward-transition``).
    src: int = -1
    dst: int = -1
    #: Explicit turn notation, e.g. ``"X-->X+"`` (``add-turn``).
    turn: str = ""

    def __post_init__(self) -> None:
        if self.kind not in MUTATION_KINDS:
            raise EbdaError(
                f"unknown mutation kind {self.kind!r}; known: {MUTATION_KINDS}"
            )

    def describe(self) -> str:
        if self.kind == "duplicate-pair":
            return f"duplicate-pair[{self.channels} -> P{self.partition}]"
        if self.kind == "backward-transition":
            return f"backward-transition[P{self.src} -> P{self.dst}]"
        if self.kind == "add-turn":
            return f"add-turn[{self.turn}]"
        return f"drop-channel[{self.channels} from P{self.partition}]"

    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind}
        if self.partition >= 0:
            out["partition"] = self.partition
        if self.channels:
            out["channels"] = self.channels
        if self.src >= 0:
            out["src"] = self.src
        if self.dst >= 0:
            out["dst"] = self.dst
        if self.turn:
            out["turn"] = self.turn
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Mutation":
        return cls(
            kind=data["kind"],
            partition=int(data.get("partition", -1)),
            channels=data.get("channels", ""),
            src=int(data.get("src", -1)),
            dst=int(data.get("dst", -1)),
            turn=data.get("turn", ""),
        )


@dataclass(frozen=True)
class FuzzDesign:
    """A fully replayable design recipe for one differential trial."""

    topology_kind: str
    shape: tuple[int, ...]
    #: Base partition sequence in arrow notation.
    sequence: str
    #: Named class rule (a :data:`repro.topology.classes.NAMED_RULES` key).
    rule: str = "none"
    mutations: tuple[Mutation, ...] = ()
    #: Provenance tag: ``"valid:..."`` for generator-certified designs,
    #: ``"mutant:<kind>"`` for deliberate violations.
    label: str = "valid"

    # -- realisation -------------------------------------------------------

    def topology(self) -> Topology:
        if self.topology_kind == "mesh":
            return Mesh(*self.shape)
        if self.topology_kind == "torus":
            return Torus(*self.shape)
        raise EbdaError(f"unknown topology kind {self.topology_kind!r}")

    def class_rule(self) -> ClassRule:
        try:
            return NAMED_RULES[self.rule]
        except KeyError:
            raise EbdaError(
                f"unknown class rule {self.rule!r}; known: {sorted(NAMED_RULES)}"
            )

    def base_sequence(self) -> PartitionSequence:
        return PartitionSequence.parse(self.sequence)

    def compile(self) -> tuple[PartitionSequence, TurnSet]:
        """The concrete (sequence, turnset) the oracles judge.

        Structural mutations edit the partitions; turn-level mutations
        merge extra turns into the extracted set.  No theorem validation
        happens here — an invalid result is the whole point.
        """
        base = self.base_sequence()
        parts: list[list[Channel]] = [list(p.channels) for p in base]
        for m in self.mutations:
            if m.kind == "duplicate-pair":
                if not 0 <= m.partition < len(parts):
                    continue
                for spec in m.channels.split():
                    ch = Channel.parse(spec)
                    if ch not in parts[m.partition]:
                        parts[m.partition].append(ch)
            elif m.kind == "drop-channel":
                if not 0 <= m.partition < len(parts):
                    continue
                ch = Channel.parse(m.channels)
                if ch in parts[m.partition]:
                    parts[m.partition].remove(ch)

        surviving = [i for i, chans in enumerate(parts) if chans]
        if not surviving:
            raise EbdaError("mutations removed every channel of the design")
        index_map = {old: new for new, old in enumerate(surviving)}
        seq = PartitionSequence(
            tuple(
                Partition(tuple(parts[i]), name=base[i].name) for i in surviving
            )
        )

        turnset = extract_turns(seq, validate=False)
        extra: list[Turn] = []
        for m in self.mutations:
            if m.kind == "add-turn":
                t = Turn.parse(m.turn)
                if seq.covers(t.src) and seq.covers(t.dst):
                    extra.append(t)
            elif m.kind == "backward-transition":
                if m.src in index_map and m.dst in index_map:
                    later = seq[index_map[m.src]]
                    earlier = seq[index_map[m.dst]]
                    extra.extend(
                        Turn(a, b) for a in later for b in earlier if a != b
                    )
        if extra:
            turnset = turnset.merged_with(TurnSet({"mutation": tuple(extra)}))
        return seq, turnset

    # -- bookkeeping -------------------------------------------------------

    @property
    def labeled_valid(self) -> bool:
        """Did the generator certify this design as theorem-compliant?"""
        return self.label.startswith("valid")

    def size(self) -> tuple[int, int, int]:
        """Strictly-ordered size metric the shrinker minimises.

        Lexicographic: (channels + mutations, radix mass with a torus
        surcharge, partition count) — every shrink move must decrease it.
        """
        base = self.base_sequence()
        torus_weight = 2 if self.topology_kind == "torus" else 0
        return (
            base.channel_count + len(self.mutations),
            sum(self.shape) + torus_weight,
            len(base),
        )

    def describe(self) -> str:
        muts = ", ".join(m.describe() for m in self.mutations) or "none"
        return (
            f"{self.topology_kind}{'x'.join(map(str, self.shape))}"
            f" [{self.sequence}] rule={self.rule} mutations: {muts}"
        )

    def to_dict(self) -> dict:
        return {
            "topology": self.topology_kind,
            "shape": list(self.shape),
            "sequence": self.sequence,
            "rule": self.rule,
            "mutations": [m.to_dict() for m in self.mutations],
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzDesign":
        return cls(
            topology_kind=data["topology"],
            shape=tuple(int(k) for k in data["shape"]),
            sequence=data["sequence"],
            rule=data.get("rule", "none"),
            mutations=tuple(
                Mutation.from_dict(m) for m in data.get("mutations", ())
            ),
            label=data.get("label", "valid"),
        )
