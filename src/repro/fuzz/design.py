"""The fuzzer's design space: serialisable EbDa designs plus invalid mutants.

A :class:`FuzzDesign` is a *recipe*, not a live object: a topology family
and shape, the base partition sequence in arrow notation, a named class
rule, the routing engine that realises the design, optional failed links
(irregular trials) and a tuple of :class:`Mutation` edits.  Keeping the
recipe plain data makes every trial picklable (for the worker fan-out),
JSON-serialisable (for the regression corpus) and exactly replayable from
a generator seed.

Five topology families are supported (:data:`FAMILIES`): the original
``mesh``/``torus`` designs routed by the EbDa turn table, ``dragonfly``
groups under the minimal L1 -> G -> L2 engine (or its broken single-VC
variant), two-level ``fattree`` instances under Up*/Down* (or the broken
greedy variant), and ``irregular`` meshes with failed links routed by the
turn table with progressive directions and an escape fallback.

Mutations model the known ways a design can be *wrong*:

* ``duplicate-pair`` — extra channels grafted into a partition so it
  covers a second complete D-pair (Theorem 1 violation);
* ``backward-transition`` — every turn from a later partition back into an
  earlier one (Theorem 3 violation, the "shuffled transition order" case);
* ``add-turn`` — one explicit extra turn, e.g. a descending U-turn
  (Theorem 2 violation);
* ``drop-channel`` — a channel removed from a partition (connectivity /
  dropped-escape probes; on a dateline torus this can leave wrap links
  bare or rings unbroken).

Broken *engines* (``dragonfly-single-vc``, ``greedy-up-down``) play the
same role at the routing level: the recipe stays well-formed, the
realised dependency relation does not.

Compilation deliberately bypasses theorem validation
(:func:`~repro.core.extraction.extract_turns` with ``validate=False``) —
judging the result is the oracles' job, not the constructor's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.channel import Channel
from repro.core.extraction import extract_turns
from repro.core.partition import Partition
from repro.core.sequence import PartitionSequence
from repro.core.turns import Turn, TurnSet
from repro.errors import EbdaError
from repro.topology.base import Topology
from repro.topology.classes import NAMED_RULES, ClassRule
from repro.topology.dragonfly import Dragonfly
from repro.topology.fattree import FatTree
from repro.topology.irregular import FaultyMesh
from repro.topology.mesh import Mesh
from repro.topology.torus import Torus

__all__ = [
    "ENGINES",
    "FAMILIES",
    "MUTATION_KINDS",
    "FuzzDesign",
    "Mutation",
]

#: Supported mutation kinds, in generator rotation order.
MUTATION_KINDS = (
    "duplicate-pair",
    "backward-transition",
    "add-turn",
    "drop-channel",
)

#: Supported topology families, in CLI order.
FAMILIES = ("mesh", "torus", "dragonfly", "fattree", "irregular")

#: Supported routing engines.  ``table`` is the EbDa turn table; the rest
#: are native engines from :mod:`repro.routing`.
ENGINES = (
    "table",
    "dragonfly",
    "dragonfly-single-vc",
    "up-down",
    "greedy-up-down",
)

#: Engines each family may use (the first entry is the family default).
_FAMILY_ENGINES: dict[str, tuple[str, ...]] = {
    "mesh": ("table",),
    "torus": ("table",),
    "dragonfly": ("dragonfly", "dragonfly-single-vc", "up-down"),
    "fattree": ("up-down", "greedy-up-down"),
    "irregular": ("table",),
}

#: Schema keys :meth:`FuzzDesign.from_dict` accepts (``topology`` is the
#: pre-family legacy spelling of ``family``).
_SCHEMA_KEYS = frozenset(
    {
        "family",
        "topology",
        "shape",
        "sequence",
        "rule",
        "mutations",
        "label",
        "engine",
        "failed_links",
    }
)


@dataclass(frozen=True)
class Mutation:
    """One deliberate edit applied to a base design (see module docstring)."""

    kind: str
    #: Target partition index (``duplicate-pair`` / ``drop-channel``).
    partition: int = -1
    #: Space-separated channel specs to add (``duplicate-pair``) or the
    #: single spec to remove (``drop-channel``).
    channels: str = ""
    #: Source/destination partition indices (``backward-transition``).
    src: int = -1
    dst: int = -1
    #: Explicit turn notation, e.g. ``"X-->X+"`` (``add-turn``).
    turn: str = ""

    def __post_init__(self) -> None:
        if self.kind not in MUTATION_KINDS:
            raise EbdaError(
                f"unknown mutation kind {self.kind!r}; known: {MUTATION_KINDS}"
            )

    def describe(self) -> str:
        if self.kind == "duplicate-pair":
            return f"duplicate-pair[{self.channels} -> P{self.partition}]"
        if self.kind == "backward-transition":
            return f"backward-transition[P{self.src} -> P{self.dst}]"
        if self.kind == "add-turn":
            return f"add-turn[{self.turn}]"
        return f"drop-channel[{self.channels} from P{self.partition}]"

    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind}
        if self.partition >= 0:
            out["partition"] = self.partition
        if self.channels:
            out["channels"] = self.channels
        if self.src >= 0:
            out["src"] = self.src
        if self.dst >= 0:
            out["dst"] = self.dst
        if self.turn:
            out["turn"] = self.turn
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Mutation":
        return cls(
            kind=data["kind"],
            partition=int(data.get("partition", -1)),
            channels=data.get("channels", ""),
            src=int(data.get("src", -1)),
            dst=int(data.get("dst", -1)),
            turn=data.get("turn", ""),
        )


@dataclass(frozen=True)
class FuzzDesign:
    """A fully replayable design recipe for one differential trial."""

    #: Topology family (a :data:`FAMILIES` member).
    topology_kind: str
    shape: tuple[int, ...]
    #: Base partition sequence in arrow notation.
    sequence: str
    #: Named class rule (a :data:`repro.topology.classes.NAMED_RULES` key,
    #: or ``"updown-bfs"`` for levels derived by BFS on the realised
    #: topology).
    rule: str = "none"
    mutations: tuple[Mutation, ...] = ()
    #: Provenance tag: ``"valid:..."`` for generator-certified designs,
    #: ``"mutant:<kind>"`` for deliberate violations.
    label: str = "valid"
    #: Routing engine realising the design (an :data:`ENGINES` member
    #: compatible with the family).
    engine: str = "table"
    #: Failed bidirectional links, as sorted node pairs (irregular family
    #: and degraded dragonflies only).
    failed_links: tuple[tuple[tuple[int, ...], tuple[int, ...]], ...] = field(
        default=()
    )

    def __post_init__(self) -> None:
        if self.topology_kind not in FAMILIES:
            raise EbdaError(
                f"unknown topology family {self.topology_kind!r}; known: {FAMILIES}"
            )
        allowed = _FAMILY_ENGINES[self.topology_kind]
        if self.engine not in allowed:
            raise EbdaError(
                f"engine {self.engine!r} not usable on family "
                f"{self.topology_kind!r}; allowed: {allowed}"
            )
        normalized = tuple(
            sorted(
                {
                    tuple(sorted((tuple(int(c) for c in u), tuple(int(c) for c in v))))
                    for u, v in self.failed_links
                }
            )
        )
        object.__setattr__(self, "failed_links", normalized)
        if normalized:
            if self.topology_kind not in ("dragonfly", "irregular"):
                raise EbdaError(
                    f"failed links are only meaningful on dragonfly/irregular "
                    f"families, not {self.topology_kind!r}"
                )
            if self.engine in ("dragonfly", "dragonfly-single-vc"):
                raise EbdaError(
                    "the minimal dragonfly engines need the intact group "
                    "structure; route degraded dragonflies with 'up-down'"
                )
        if self.topology_kind == "dragonfly" and len(self.shape) != 1:
            raise EbdaError(f"dragonfly shape is (groups,), got {self.shape}")
        if self.topology_kind == "fattree" and len(self.shape) != 3:
            raise EbdaError(
                f"fattree shape is (leaves, spines, hosts_per_leaf), got {self.shape}"
            )

    # -- realisation -------------------------------------------------------

    def topology(self) -> Topology:
        if self.topology_kind == "mesh":
            return Mesh(*self.shape)
        if self.topology_kind == "torus":
            return Torus(*self.shape)
        if self.topology_kind == "dragonfly":
            base: Topology = Dragonfly(self.shape[0])
            if self.failed_links:
                return FaultyMesh(base, self.failed_links)
            return base
        if self.topology_kind == "fattree":
            return FatTree(*self.shape)
        # irregular: a mesh minus its failed links.
        return FaultyMesh(Mesh(*self.shape), self.failed_links)

    def class_rule(self) -> ClassRule:
        if self.rule == "updown-bfs":
            from repro.routing.updown import UpDownRouting

            return UpDownRouting(self.topology()).class_rule
        try:
            return NAMED_RULES[self.rule]
        except KeyError:
            raise EbdaError(
                f"unknown class rule {self.rule!r}; known: "
                f"{sorted(NAMED_RULES) + ['updown-bfs']}"
            )

    def engine_routing(self, topology: Topology | None = None):
        """The native routing engine, or ``None`` for table-routed designs.

        Built fresh per call (engines cache per-destination reachability,
        so callers should reuse the instance within a trial).
        """
        if self.engine == "table":
            return None
        from repro.routing.dragonfly import DragonflyRouting, DragonflySingleVC
        from repro.routing.updown import GreedyUpDownRouting, UpDownRouting

        topo = topology if topology is not None else self.topology()
        if self.engine == "dragonfly":
            return DragonflyRouting(topo)
        if self.engine == "dragonfly-single-vc":
            return DragonflySingleVC(topo)
        levels = (
            {n: 2 - n[0] for n in topo.nodes}
            if self.topology_kind == "fattree"
            else None
        )
        if self.engine == "up-down":
            return UpDownRouting(topo, levels=levels)
        return GreedyUpDownRouting(topo, levels=levels)

    def base_sequence(self) -> PartitionSequence:
        return PartitionSequence.parse(self.sequence)

    def compile(self) -> tuple[PartitionSequence, TurnSet]:
        """The concrete (sequence, turnset) the oracles judge.

        Structural mutations edit the partitions; turn-level mutations
        merge extra turns into the extracted set.  No theorem validation
        happens here — an invalid result is the whole point.
        """
        base = self.base_sequence()
        parts: list[list[Channel]] = [list(p.channels) for p in base]
        for m in self.mutations:
            if m.kind == "duplicate-pair":
                if not 0 <= m.partition < len(parts):
                    continue
                for spec in m.channels.split():
                    ch = Channel.parse(spec)
                    if ch not in parts[m.partition]:
                        parts[m.partition].append(ch)
            elif m.kind == "drop-channel":
                if not 0 <= m.partition < len(parts):
                    continue
                ch = Channel.parse(m.channels)
                if ch in parts[m.partition]:
                    parts[m.partition].remove(ch)

        surviving = [i for i, chans in enumerate(parts) if chans]
        if not surviving:
            raise EbdaError("mutations removed every channel of the design")
        index_map = {old: new for new, old in enumerate(surviving)}
        seq = PartitionSequence(
            tuple(
                Partition(tuple(parts[i]), name=base[i].name) for i in surviving
            )
        )

        turnset = extract_turns(seq, validate=False)
        extra: list[Turn] = []
        for m in self.mutations:
            if m.kind == "add-turn":
                t = Turn.parse(m.turn)
                if seq.covers(t.src) and seq.covers(t.dst):
                    extra.append(t)
            elif m.kind == "backward-transition":
                if m.src in index_map and m.dst in index_map:
                    later = seq[index_map[m.src]]
                    earlier = seq[index_map[m.dst]]
                    extra.extend(
                        Turn(a, b) for a in later for b in earlier if a != b
                    )
        if extra:
            turnset = turnset.merged_with(TurnSet({"mutation": tuple(extra)}))
        return seq, turnset

    # -- bookkeeping -------------------------------------------------------

    @property
    def labeled_valid(self) -> bool:
        """Did the generator certify this design as theorem-compliant?"""
        return self.label.startswith("valid")

    def size(self) -> tuple[int, int, int]:
        """Strictly-ordered size metric the shrinker minimises.

        Lexicographic: (channels + mutations + failed links, radix mass
        with a torus/irregular surcharge, partition count) — every shrink
        move must decrease it.  The irregular surcharge lets the shrinker
        heal a fully-restored irregular mesh into a plain mesh.
        """
        base = self.base_sequence()
        weight = {"torus": 2, "irregular": 1}.get(self.topology_kind, 0)
        return (
            base.channel_count + len(self.mutations) + len(self.failed_links),
            sum(self.shape) + weight,
            len(base),
        )

    def describe(self) -> str:
        muts = ", ".join(m.describe() for m in self.mutations) or "none"
        engine = "" if self.engine == "table" else f" engine={self.engine}"
        failed = (
            f" failed={len(self.failed_links)}" if self.failed_links else ""
        )
        return (
            f"{self.topology_kind}{'x'.join(map(str, self.shape))}"
            f" [{self.sequence}] rule={self.rule}{engine}{failed} mutations: {muts}"
        )

    def to_dict(self) -> dict:
        return {
            "family": self.topology_kind,
            "shape": list(self.shape),
            "sequence": self.sequence,
            "rule": self.rule,
            "mutations": [m.to_dict() for m in self.mutations],
            "label": self.label,
            "engine": self.engine,
            "failed_links": [
                [list(u), list(v)] for u, v in self.failed_links
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzDesign":
        unknown = set(data) - _SCHEMA_KEYS
        if unknown:
            raise EbdaError(
                f"unknown FuzzDesign keys {sorted(unknown)}; "
                f"known: {sorted(_SCHEMA_KEYS)}"
            )
        if "family" in data:
            family = data["family"]
        elif "topology" in data:
            family = data["topology"]  # legacy spelling
        else:
            raise EbdaError("FuzzDesign dict needs a 'family' key")
        if family not in FAMILIES:
            raise EbdaError(
                f"unknown topology family {family!r}; known: {FAMILIES}"
            )
        engine = data.get("engine", _FAMILY_ENGINES[family][0] if family in ("dragonfly", "fattree") else "table")
        if engine not in ENGINES:
            raise EbdaError(f"unknown engine {engine!r}; known: {ENGINES}")
        return cls(
            topology_kind=family,
            shape=tuple(int(k) for k in data["shape"]),
            sequence=data["sequence"],
            rule=data.get("rule", "none"),
            mutations=tuple(
                Mutation.from_dict(m) for m in data.get("mutations", ())
            ),
            label=data.get("label", "valid"),
            engine=engine,
            failed_links=tuple(
                (tuple(u), tuple(v)) for u, v in data.get("failed_links", ())
            ),
        )
