"""Delta-debugging for fuzz designs: minimise while preserving a predicate.

:func:`shrink` greedily walks a disagreeing design down to a tiny witness:
at each step it proposes a deterministic list of structurally smaller
candidates (drop a mutation, restore a failed link, drop a partition or
channel, shave a radix, drop a whole dimension, flatten a torus to a
mesh, heal a fully-restored irregular mesh) and takes the first one
that still satisfies the caller's predicate *and* strictly decreases
:meth:`FuzzDesign.size`.  The strict decrease makes termination a
structural fact, not a hope; candidates that fail to even compile are
skipped rather than fatal.

The predicate is usually "the differential oracle still reports the same
disagreement", so the shrunk witness reproduces the original finding —
that is what gets persisted to the corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterator

from repro.core.channel import Channel
from repro.core.partition import Partition
from repro.core.sequence import PartitionSequence
from repro.core.turns import Turn
from repro.fuzz.design import FuzzDesign, Mutation

__all__ = ["ShrinkResult", "shrink", "within_witness_bound"]


@dataclass
class ShrinkResult:
    """Outcome of a shrink run."""

    design: FuzzDesign
    steps: int = 0
    #: One human-readable line per accepted move.
    trace: tuple[str, ...] = field(default_factory=tuple)

    def to_dict(self) -> dict:
        return {
            "design": self.design.to_dict(),
            "steps": self.steps,
            "trace": list(self.trace),
        }


def within_witness_bound(design: FuzzDesign) -> bool:
    """No larger than a 2-ary 2-mesh (the acceptance-criteria bound)."""
    return (
        design.topology_kind == "mesh"
        and len(design.shape) <= 2
        and all(k <= 2 for k in design.shape)
    )


def shrink(
    design: FuzzDesign,
    predicate: Callable[[FuzzDesign], bool],
    *,
    max_steps: int = 64,
) -> ShrinkResult:
    """Greedy fixpoint minimisation of ``design`` under ``predicate``.

    ``predicate(design)`` must already hold on entry; the result is a
    local minimum — no single proposed move both shrinks it further and
    keeps the predicate true.
    """
    current = design
    trace: list[str] = []
    for _ in range(max_steps):
        advanced = False
        for note, candidate in _candidates(current):
            if candidate.size() >= current.size():
                continue
            try:
                ok = predicate(candidate)
            except Exception:  # noqa: BLE001 — a broken candidate is just skipped
                continue
            if ok:
                current = candidate
                trace.append(note)
                advanced = True
                break
        if not advanced:
            break
    return ShrinkResult(design=current, steps=len(trace), trace=tuple(trace))


# -- candidate moves, most aggressive first ---------------------------------


def _candidates(design: FuzzDesign) -> Iterator[tuple[str, FuzzDesign]]:
    yield from _flatten_torus(design)
    yield from _heal_irregular(design)
    yield from _drop_mutations(design)
    yield from _drop_failed_links(design)
    yield from _drop_dimensions(design)
    yield from _drop_partitions(design)
    yield from _drop_channels(design)
    yield from _shave_radices(design)


def _parse_seq(design: FuzzDesign) -> PartitionSequence | None:
    try:
        return design.base_sequence()
    except Exception:  # noqa: BLE001
        return None


def _rebuild(
    design: FuzzDesign,
    parts: list[tuple[str, list[Channel]]],
    mutations: tuple[Mutation, ...],
    **overrides,
) -> FuzzDesign | None:
    """A new design from edited partitions; None when it cannot exist."""
    kept = [(name, chans) for name, chans in parts if chans]
    if not kept:
        return None
    try:
        seq = PartitionSequence(
            tuple(Partition(tuple(chans), name=name) for name, chans in kept)
        )
    except Exception:  # noqa: BLE001 — e.g. duplicate channels after a rewrite
        return None
    fields = {
        "topology_kind": design.topology_kind,
        "shape": design.shape,
        "sequence": seq.arrow_notation(),
        "rule": design.rule,
        "mutations": mutations,
        "label": design.label,
        "engine": design.engine,
        "failed_links": design.failed_links,
    }
    fields.update(overrides)
    try:
        return FuzzDesign(**fields)
    except Exception:  # noqa: BLE001 — e.g. a family/shape constraint violated
        return None


def _map_mutation(
    mutation: Mutation,
    *,
    chan: Callable[[Channel], Channel | None] | None = None,
    part: Callable[[int], int | None] | None = None,
) -> Mutation | None:
    """Remap a mutation through channel/partition-index transforms.

    Returns ``None`` when the mutation no longer makes sense (its channel
    or partition was eliminated) — the caller then drops it, and the
    predicate decides whether the candidate still disagrees.
    """
    kind = mutation.kind
    partition, src, dst = mutation.partition, mutation.src, mutation.dst
    channels, turn = mutation.channels, mutation.turn
    if part is not None:
        for name, idx in (("partition", partition), ("src", src), ("dst", dst)):
            if idx < 0:
                continue
            mapped = part(idx)
            if mapped is None:
                return None
            if name == "partition":
                partition = mapped
            elif name == "src":
                src = mapped
            else:
                dst = mapped
        if kind == "backward-transition" and src <= dst:
            return None  # no longer backward once indices collapsed
    if chan is not None and channels:
        mapped_specs = []
        for spec in channels.split():
            ch = chan(Channel.parse(spec))
            if ch is None:
                return None
            mapped_specs.append(str(ch))
        channels = " ".join(mapped_specs)
    if chan is not None and turn:
        t = Turn.parse(turn)
        a, b = chan(t.src), chan(t.dst)
        if a is None or b is None or a == b:
            return None
        turn = f"{a}->{b}"
    return Mutation(
        kind, partition=partition, channels=channels, src=src, dst=dst, turn=turn
    )


def _map_all(
    mutations: tuple[Mutation, ...],
    *,
    chan: Callable[[Channel], Channel | None] | None = None,
    part: Callable[[int], int | None] | None = None,
) -> tuple[Mutation, ...]:
    out = []
    for m in mutations:
        mapped = _map_mutation(m, chan=chan, part=part)
        if mapped is not None:
            out.append(mapped)
    return tuple(out)


def _flatten_torus(design: FuzzDesign) -> Iterator[tuple[str, FuzzDesign]]:
    """Torus → mesh of the same shape, class tags stripped everywhere."""
    if design.topology_kind != "torus":
        return
    seq = _parse_seq(design)
    if seq is None:
        return

    def strip(ch: Channel) -> Channel:
        return Channel(ch.dim, ch.sign, ch.vc, "")

    parts = [(p.name, [strip(c) for c in p.channels]) for p in seq]
    candidate = _rebuild(
        design,
        parts,
        _map_all(design.mutations, chan=strip),
        topology_kind="mesh",
        rule="none",
    )
    if candidate is not None:
        yield "flatten torus to mesh (strip class tags)", candidate


def _heal_irregular(design: FuzzDesign) -> Iterator[tuple[str, FuzzDesign]]:
    """Irregular mesh with no failures left → a plain mesh."""
    if design.topology_kind != "irregular" or design.failed_links:
        return
    yield "heal irregular mesh (no failures left)", replace(
        design, topology_kind="mesh"
    )


def _drop_mutations(design: FuzzDesign) -> Iterator[tuple[str, FuzzDesign]]:
    for i, m in enumerate(design.mutations):
        rest = design.mutations[:i] + design.mutations[i + 1 :]
        yield f"drop mutation {m.describe()}", replace(design, mutations=rest)


def _drop_failed_links(design: FuzzDesign) -> Iterator[tuple[str, FuzzDesign]]:
    """Restore failed links one at a time (delta-debug the failure set)."""
    for i, pair in enumerate(design.failed_links):
        rest = design.failed_links[:i] + design.failed_links[i + 1 :]
        yield (
            f"restore failed link {pair[0]}-{pair[1]}",
            replace(design, failed_links=rest),
        )


def _drop_dimensions(design: FuzzDesign) -> Iterator[tuple[str, FuzzDesign]]:
    if len(design.shape) <= 1:
        return
    seq = _parse_seq(design)
    if seq is None:
        return
    for dim in range(len(design.shape)):

        def renumber(ch: Channel, dim=dim) -> Channel | None:
            if ch.dim == dim:
                return None
            d = ch.dim - 1 if ch.dim > dim else ch.dim
            return Channel(d, ch.sign, ch.vc, ch.cls)

        parts = []
        for p in seq:
            chans = [renumber(c) for c in p.channels]
            parts.append((p.name, [c for c in chans if c is not None]))
        shape = design.shape[:dim] + design.shape[dim + 1 :]
        candidate = _rebuild(
            design, parts, _map_all(design.mutations, chan=renumber), shape=shape
        )
        if candidate is not None:
            yield f"drop dimension {dim}", candidate


def _drop_partitions(design: FuzzDesign) -> Iterator[tuple[str, FuzzDesign]]:
    seq = _parse_seq(design)
    if seq is None or len(seq) <= 1:
        return
    for i in range(len(seq)):

        def remap(idx: int, i=i) -> int | None:
            if idx == i:
                return None
            return idx - 1 if idx > i else idx

        parts = [
            (p.name, list(p.channels)) for j, p in enumerate(seq) if j != i
        ]
        candidate = _rebuild(
            design, parts, _map_all(design.mutations, part=remap)
        )
        if candidate is not None:
            yield f"drop partition {i}", candidate


def _drop_channels(design: FuzzDesign) -> Iterator[tuple[str, FuzzDesign]]:
    seq = _parse_seq(design)
    if seq is None:
        return
    for i, p in enumerate(seq):
        for ch in p.channels:
            parts = [
                (q.name, [c for c in q.channels if not (j == i and c == ch)])
                for j, q in enumerate(seq)
            ]
            candidate = _rebuild(design, parts, design.mutations)
            if candidate is not None:
                yield f"drop channel {ch} from partition {i}", candidate


#: Per-family minimum radix per shape slot (single value = every slot).
_RADIX_FLOORS = {
    "torus": (3,),
    "dragonfly": (3,),
    "fattree": (2, 1, 1),
    "mesh": (2,),
    "irregular": (2,),
}


def _shave_radices(design: FuzzDesign) -> Iterator[tuple[str, FuzzDesign]]:
    floors = _RADIX_FLOORS[design.topology_kind]
    for dim, k in enumerate(design.shape):
        floor = floors[dim] if dim < len(floors) else floors[-1]
        if k <= floor:
            continue
        shape = design.shape[:dim] + (k - 1,) + design.shape[dim + 1 :]
        try:
            candidate = replace(design, shape=shape)
        except Exception:  # noqa: BLE001 — e.g. failed links now out of range
            continue
        yield f"shave dimension {dim} radix to {k - 1}", candidate
