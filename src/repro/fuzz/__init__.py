"""Differential verification fuzzing for EbDa designs.

Cross-checks the five independent safety oracles this repository
implements — the EbDa theorems (class-level), the static analyzer's
mirror rules, Dally CDG acyclicity (concrete), wormhole simulation with
a deadlock watchdog (dynamic), and the arbitrary-network existence
condition (:mod:`repro.core.arbitrary`) — over seeded random designs and
deliberate mutants across five topology families (mesh, torus,
dragonfly, fat-tree, irregular), shrinking any disagreement to a minimal
replayable witness.  A sixth oracle (:mod:`repro.fuzz.instantiation`)
judges the *symbolic prover* instead: parametric certificates are
instantiated at random ``(n, k)`` points and compared against the
concrete linter.  See ``docs/FUZZING.md``.
"""

from repro.fuzz.corpus import (
    CorpusEntry,
    entry_id,
    load_corpus,
    load_entry,
    replay_entry,
    save_entry,
)
from repro.fuzz.design import (
    ENGINES,
    FAMILIES,
    MUTATION_KINDS,
    FuzzDesign,
    Mutation,
)
from repro.fuzz.generator import DEFAULT_FAMILIES, DesignGenerator
from repro.fuzz.instantiation import (
    InstantiationReport,
    PointDisagreement,
    run_instantiations,
)
from repro.fuzz.oracle import (
    HARD_DISAGREEMENTS,
    DifferentialOracle,
    SimProfile,
    TrialResult,
    fast_profile,
)
from repro.fuzz.runner import (
    Disagreement,
    FuzzReport,
    replay_corpus,
    run_fuzz,
    self_check,
)
from repro.fuzz.shrink import ShrinkResult, shrink, within_witness_bound

__all__ = [
    "DEFAULT_FAMILIES",
    "ENGINES",
    "FAMILIES",
    "MUTATION_KINDS",
    "HARD_DISAGREEMENTS",
    "CorpusEntry",
    "DesignGenerator",
    "DifferentialOracle",
    "Disagreement",
    "FuzzDesign",
    "FuzzReport",
    "InstantiationReport",
    "Mutation",
    "PointDisagreement",
    "ShrinkResult",
    "SimProfile",
    "TrialResult",
    "entry_id",
    "fast_profile",
    "load_corpus",
    "load_entry",
    "replay_corpus",
    "replay_entry",
    "run_fuzz",
    "run_instantiations",
    "save_entry",
    "self_check",
    "shrink",
    "within_witness_bound",
]
