"""The regression corpus: persisted witnesses with exact-replay metadata.

Each entry is one JSON file holding a :class:`FuzzDesign` recipe plus
provenance (generator seed/trial when the fuzzer found it, a free-form
note, and the expected classification).  File names are content-addressed
— ``fuzz-<sha256 prefix of the canonical design JSON>.json`` — so saving
the same witness twice is idempotent and entries never collide.

The committed corpus under ``tests/fuzz/corpus/`` is a set of known-unsafe
designs that every release must keep detecting; :func:`replay_entry` runs
one through a fresh :class:`~repro.fuzz.oracle.DifferentialOracle` and
compares against the recorded expectation.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import EbdaError
from repro.fuzz.design import FuzzDesign
from repro.fuzz.oracle import DifferentialOracle, TrialResult

__all__ = [
    "CorpusEntry",
    "entry_id",
    "load_corpus",
    "load_entry",
    "replay_entry",
    "save_entry",
]


def entry_id(design: FuzzDesign) -> str:
    """Stable content hash of a design recipe (12 hex chars)."""
    canonical = json.dumps(design.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:12]


@dataclass
class CorpusEntry:
    """One persisted witness."""

    design: FuzzDesign
    #: What the oracle is expected to classify this design as.
    expect: str
    #: Why this entry exists (human-readable).
    note: str = ""
    #: Replay provenance: generator seed / trial index, or "handcrafted".
    origin: dict = field(default_factory=dict)

    @property
    def id(self) -> str:
        return entry_id(self.design)

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "design": self.design.to_dict(),
            "expect": self.expect,
            "note": self.note,
            "origin": self.origin,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CorpusEntry":
        return cls(
            design=FuzzDesign.from_dict(data["design"]),
            expect=data["expect"],
            note=data.get("note", ""),
            origin=data.get("origin", {}),
        )


def save_entry(entry: CorpusEntry, corpus_dir: str | Path) -> Path:
    """Write one entry (idempotent: content-addressed filename)."""
    directory = Path(corpus_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"fuzz-{entry.id}.json"
    path.write_text(json.dumps(entry.to_dict(), indent=2, sort_keys=True) + "\n")
    return path


def load_entry(path: str | Path) -> CorpusEntry:
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise EbdaError(f"cannot load corpus entry {path}: {exc}") from exc
    return CorpusEntry.from_dict(data)


def load_corpus(corpus_dir: str | Path) -> list[CorpusEntry]:
    """All entries under ``corpus_dir``, sorted by filename."""
    directory = Path(corpus_dir)
    if not directory.is_dir():
        return []
    return [load_entry(p) for p in sorted(directory.glob("fuzz-*.json"))]


def replay_entry(
    entry: CorpusEntry, oracle: DifferentialOracle | None = None
) -> tuple[bool, TrialResult]:
    """Re-run one witness; (still_detected, trial).

    ``still_detected`` means the oracle's classification matches the
    recorded expectation — for unsafe entries, that the design is still
    being caught.
    """
    oracle = oracle or DifferentialOracle()
    trial = oracle.run(entry.design)
    return (trial.classification == entry.expect, trial)
