"""Seeded design generation: valid EbDa designs and deliberate mutants.

Every trial draws from ``random.Random(f"{seed}:{trial}")`` — a private
stream per trial index — so any single trial replays exactly without
re-generating its predecessors, and a worker pool produces the same
designs regardless of scheduling.

Valid designs come from the library's own constructive machinery (the
fuzzer cross-checks it, so generation must not hand-roll designs):

* meshes — Algorithm 1 over a random VC budget
  (:func:`~repro.core.partitioning.partition_vc_budget`);
* tori — the dateline scheme
  (:func:`~repro.core.torus_designs.dateline_design`) with the ``dateline``
  class rule.

Mutants start from a valid design and apply one :class:`Mutation`; see
:mod:`repro.fuzz.design` for the catalogue.
"""

from __future__ import annotations

import random

from repro.core.channel import NEG, POS, Channel
from repro.core.partitioning import partition_vc_budget
from repro.core.sequence import PartitionSequence
from repro.core.torus_designs import dateline_design
from repro.fuzz.design import FuzzDesign, Mutation

__all__ = ["DesignGenerator"]


class DesignGenerator:
    """Deterministic sampler over the fuzz design space.

    Parameters
    ----------
    seed:
        Root seed; combined with the trial index per design.
    mutant_fraction:
        Probability a trial yields a deliberately invalid mutant instead
        of a generator-certified valid design.
    torus_fraction:
        Probability a base design targets a torus (dateline scheme)
        instead of a mesh (Algorithm 1).
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        mutant_fraction: float = 0.4,
        torus_fraction: float = 0.3,
    ) -> None:
        self.seed = seed
        self.mutant_fraction = mutant_fraction
        self.torus_fraction = torus_fraction

    # -- public API --------------------------------------------------------

    def design_for(self, trial: int) -> FuzzDesign:
        """The design of one trial (independent of all other trials)."""
        rng = random.Random(f"{self.seed}:{trial}")
        base = self._valid(rng)
        if rng.random() < self.mutant_fraction:
            return self._mutate(base, rng)
        return base

    def designs(self, n: int, start: int = 0) -> list[FuzzDesign]:
        """Designs for trials ``start .. start + n - 1``."""
        return [self.design_for(i) for i in range(start, start + n)]

    # -- valid designs -----------------------------------------------------

    def _valid(self, rng: random.Random) -> FuzzDesign:
        if rng.random() < self.torus_fraction:
            n_dims = rng.choice((1, 2))
            shape = tuple(rng.randint(3, 4) for _ in range(n_dims))
            return FuzzDesign(
                topology_kind="torus",
                shape=shape,
                sequence=dateline_design(n_dims).arrow_notation(),
                rule="dateline",
                label="valid:torus-dateline",
            )
        n_dims = rng.choice((2, 2, 3))
        max_radix = 4 if n_dims == 2 else 3
        shape = tuple(rng.randint(2, max_radix) for _ in range(n_dims))
        budget = [rng.choice((1, 1, 2)) for _ in range(n_dims)]
        return FuzzDesign(
            topology_kind="mesh",
            shape=shape,
            sequence=partition_vc_budget(budget).arrow_notation(),
            rule="none",
            label="valid:mesh-alg1",
        )

    # -- mutants -----------------------------------------------------------

    def _mutate(self, base: FuzzDesign, rng: random.Random) -> FuzzDesign:
        seq = base.base_sequence()
        makers = {
            "backward-transition": self._backward_transition,
            "add-turn": self._add_turn,
            "drop-channel": self._drop_channel,
        }
        if len(base.shape) >= 2:
            makers["duplicate-pair"] = self._duplicate_pair
        for kind in rng.sample(sorted(makers), len(makers)):
            mutation = makers[kind](seq, base, rng)
            if mutation is not None:
                return FuzzDesign(
                    topology_kind=base.topology_kind,
                    shape=base.shape,
                    sequence=base.sequence,
                    rule=base.rule,
                    mutations=(mutation,),
                    label=f"mutant:{kind}",
                )
        # Unreachable for the bases above, but keep the generator total.
        return base

    def _duplicate_pair(
        self, seq: PartitionSequence, base: FuzzDesign, rng: random.Random
    ) -> Mutation | None:
        """Graft a fresh complete pair into a partition that has one."""
        n_dims = len(base.shape)
        candidates = [
            (i, p) for i, p in enumerate(seq) if p.complete_pair_dims
        ]
        if not candidates:
            return None
        idx, part = rng.choice(candidates)
        pair_dim = sorted(part.complete_pair_dims)[0]
        other_dims = [d for d in range(n_dims) if d != pair_dim]
        if not other_dims:
            return None
        dim = rng.choice(other_dims)
        fresh_vc = 1 + max(
            (c.vc for c in seq.all_channels if c.dim == dim), default=0
        )
        # Dateline designs only instantiate tagged channels; graft onto
        # the regular links so the mutant pair carries concrete wires.
        cls = "r" if base.rule == "dateline" else ""
        specs = " ".join(
            str(Channel(dim, sign, fresh_vc, cls)) for sign in (POS, NEG)
        )
        return Mutation("duplicate-pair", partition=idx, channels=specs)

    def _backward_transition(
        self, seq: PartitionSequence, base: FuzzDesign, rng: random.Random
    ) -> Mutation | None:
        """Allow every turn from a later partition back into an earlier one."""
        if len(seq) < 2:
            return None
        src = rng.randrange(1, len(seq))
        dst = rng.randrange(0, src)
        return Mutation("backward-transition", src=src, dst=dst)

    def _add_turn(
        self, seq: PartitionSequence, base: FuzzDesign, rng: random.Random
    ) -> Mutation | None:
        """Add one descending U-/I-turn (breaks the Theorem 2 numbering)."""
        options = []
        for part in seq:
            for dim in sorted(part.complete_pair_dims):
                chans = part.channels_in_dim(dim)
                if len(chans) >= 2:
                    options.append(f"{chans[-1]}->{chans[0]}")
        if not options:
            return None
        return Mutation("add-turn", turn=rng.choice(options))

    def _drop_channel(
        self, seq: PartitionSequence, base: FuzzDesign, rng: random.Random
    ) -> Mutation | None:
        """Remove one channel (escape/connectivity probe)."""
        idx = rng.randrange(len(seq))
        part = seq[idx]
        ch = part.channels[rng.randrange(len(part.channels))]
        return Mutation("drop-channel", partition=idx, channels=str(ch))
