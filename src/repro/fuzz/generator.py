"""Seeded design generation: valid EbDa designs and deliberate mutants.

Every trial draws from ``random.Random(f"{seed}:{trial}")`` — a private
stream per trial index — so any single trial replays exactly without
re-generating its predecessors, and a worker pool produces the same
designs regardless of scheduling.

Valid designs come from the library's own constructive machinery (the
fuzzer cross-checks it, so generation must not hand-roll designs):

* meshes — Algorithm 1 over a random VC budget
  (:func:`~repro.core.partitioning.partition_vc_budget`);
* tori — the dateline scheme
  (:func:`~repro.core.torus_designs.dateline_design`) with the ``dateline``
  class rule;
* dragonflies — the minimal L1 -> G -> L2 engine over the two-class
  sequence, or Up*/Down* over a dragonfly with one global link dropped
  (the group-link-drop topology mutation, still deadlock-free);
* fat-trees — Up*/Down* with sign-derived levels;
* irregular meshes — Algorithm 1 over a mesh minus 1-2 random links that
  keep it connected, routed with progressive directions and an escape
  fallback; when the failures leave some pair unroutable under the
  design's turns, the trial is demoted to ``mutant:link-failures`` so the
  unroutable verdict stays soft.

Mutants start from a valid design and apply one :class:`Mutation` (see
:mod:`repro.fuzz.design` for the catalogue) or swap in a deliberately
broken engine: ``dragonfly-single-vc`` (no VC escape across groups, the
classic credit-loop deadlock) and ``greedy-up-down`` (Up*/Down* tags
without the down-then-up prohibition).

The default ``families=("mesh", "torus")`` reproduces the pre-family
trial stream byte-for-byte; any other selection draws the family first
from its own stream.
"""

from __future__ import annotations

import random
from dataclasses import replace

from repro.core.channel import NEG, POS, Channel
from repro.core.partitioning import partition_vc_budget
from repro.core.sequence import PartitionSequence
from repro.core.torus_designs import dateline_design
from repro.errors import TopologyError
from repro.fuzz.design import FAMILIES, FuzzDesign, Mutation
from repro.topology.dragonfly import GLOBAL_DIM, Dragonfly
from repro.topology.mesh import Mesh

__all__ = ["DEFAULT_FAMILIES", "DesignGenerator"]

#: The pre-family default: preserves the original trial stream exactly.
DEFAULT_FAMILIES = ("mesh", "torus")


class DesignGenerator:
    """Deterministic sampler over the fuzz design space.

    Parameters
    ----------
    seed:
        Root seed; combined with the trial index per design.
    mutant_fraction:
        Probability a trial yields a deliberately invalid mutant instead
        of a generator-certified valid design.
    torus_fraction:
        Probability a base design targets a torus (dateline scheme)
        instead of a mesh (Algorithm 1) — only consulted for the default
        family selection.
    families:
        Topology families to draw from (:data:`repro.fuzz.design.FAMILIES`
        members).  The default keeps the legacy mesh/torus stream.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        mutant_fraction: float = 0.4,
        torus_fraction: float = 0.3,
        families: tuple[str, ...] = DEFAULT_FAMILIES,
    ) -> None:
        self.seed = seed
        self.mutant_fraction = mutant_fraction
        self.torus_fraction = torus_fraction
        families = tuple(families)
        if not families:
            raise ValueError("at least one topology family is required")
        unknown = [f for f in families if f not in FAMILIES]
        if unknown:
            raise ValueError(
                f"unknown topology families {unknown}; known: {list(FAMILIES)}"
            )
        self.families = families

    # -- public API --------------------------------------------------------

    def design_for(self, trial: int) -> FuzzDesign:
        """The design of one trial (independent of all other trials)."""
        rng = random.Random(f"{self.seed}:{trial}")
        if self.families == DEFAULT_FAMILIES:
            # Legacy stream: torus-vs-mesh decided by torus_fraction inside
            # _valid, byte-identical to the pre-family generator.
            base = self._valid(rng)
            if rng.random() < self.mutant_fraction:
                return self._mutate(base, rng)
            return base
        family = self.families[rng.randrange(len(self.families))]
        if family == "dragonfly":
            return self._dragonfly_trial(rng)
        if family == "fattree":
            return self._fattree_trial(rng)
        if family == "irregular":
            return self._irregular_trial(rng)
        base = self._valid_torus(rng) if family == "torus" else self._valid_mesh(rng)
        if rng.random() < self.mutant_fraction:
            return self._mutate(base, rng)
        return base

    def designs(self, n: int, start: int = 0) -> list[FuzzDesign]:
        """Designs for trials ``start .. start + n - 1``."""
        return [self.design_for(i) for i in range(start, start + n)]

    # -- valid designs -----------------------------------------------------

    def _valid(self, rng: random.Random) -> FuzzDesign:
        if rng.random() < self.torus_fraction:
            return self._valid_torus(rng)
        return self._valid_mesh(rng)

    def _valid_torus(self, rng: random.Random) -> FuzzDesign:
        n_dims = rng.choice((1, 2))
        shape = tuple(rng.randint(3, 4) for _ in range(n_dims))
        return FuzzDesign(
            topology_kind="torus",
            shape=shape,
            sequence=dateline_design(n_dims).arrow_notation(),
            rule="dateline",
            label="valid:torus-dateline",
        )

    def _valid_mesh(self, rng: random.Random) -> FuzzDesign:
        n_dims = rng.choice((2, 2, 3))
        max_radix = 4 if n_dims == 2 else 3
        shape = tuple(rng.randint(2, max_radix) for _ in range(n_dims))
        budget = [rng.choice((1, 1, 2)) for _ in range(n_dims)]
        return FuzzDesign(
            topology_kind="mesh",
            shape=shape,
            sequence=partition_vc_budget(budget).arrow_notation(),
            rule="none",
            label="valid:mesh-alg1",
        )

    # -- family trials -----------------------------------------------------

    def _dragonfly_trial(self, rng: random.Random) -> FuzzDesign:
        groups = rng.randint(3, 4)
        if rng.random() >= self.mutant_fraction:
            if rng.random() < 0.3:
                # Group-link drop: still valid — Up*/Down* over the
                # degraded dragonfly is deadlock-free by construction.
                return self._dragonfly_link_drop(groups, rng)
            return FuzzDesign(
                topology_kind="dragonfly",
                shape=(groups,),
                sequence="X+@l -> Y+@g -> X2+@l",
                rule="dragonfly",
                engine="dragonfly",
                label="valid:dragonfly-minimal",
            )
        # The classic dragonfly deadlock: one local VC, so cross-group
        # l -> g -> l chains close credit loops.
        return FuzzDesign(
            topology_kind="dragonfly",
            shape=(groups,),
            sequence="X+@l -> Y+@g",
            rule="dragonfly",
            engine="dragonfly-single-vc",
            mutations=(Mutation("backward-transition", src=1, dst=0),),
            label="mutant:single-vc",
        )

    def _dragonfly_link_drop(self, groups: int, rng: random.Random) -> FuzzDesign:
        topo = Dragonfly(groups)
        pairs = sorted(
            {
                tuple(sorted((l.src, l.dst)))
                for l in topo.links
                if l.dim == GLOBAL_DIM
            }
        )
        for _ in range(8):
            pair = pairs[rng.randrange(len(pairs))]
            design = FuzzDesign(
                topology_kind="dragonfly",
                shape=(groups,),
                sequence="X+@u Y+@u -> X+@d Y+@d",
                rule="updown-bfs",
                engine="up-down",
                failed_links=(pair,),
                label="valid:dragonfly-link-drop",
            )
            try:
                design.topology()  # rejects a disconnecting drop
            except TopologyError:
                continue
            return design
        return FuzzDesign(
            topology_kind="dragonfly",
            shape=(groups,),
            sequence="X+@l -> Y+@g -> X2+@l",
            rule="dragonfly",
            engine="dragonfly",
            label="valid:dragonfly-minimal",
        )

    def _fattree_trial(self, rng: random.Random) -> FuzzDesign:
        leaves = rng.randint(2, 3)
        spines = rng.randint(1, 2)
        hosts = rng.randint(1, 2)
        if rng.random() >= self.mutant_fraction:
            return FuzzDesign(
                topology_kind="fattree",
                shape=(leaves, spines, hosts),
                sequence="X+@u -> X-@d",
                rule="updown-signs",
                engine="up-down",
                label="valid:fattree-updown",
            )
        # Up/down violation: the greedy engine takes up-links after
        # down-links.  Two spines guarantee a node-simple leaf/spine cycle.
        return FuzzDesign(
            topology_kind="fattree",
            shape=(leaves, max(2, spines), hosts),
            sequence="X+@u -> X-@d",
            rule="updown-signs",
            engine="greedy-up-down",
            mutations=(Mutation("backward-transition", src=1, dst=0),),
            label="mutant:greedy-up-down",
        )

    def _irregular_trial(self, rng: random.Random) -> FuzzDesign:
        shape = (rng.randint(3, 4), rng.randint(3, 4))
        budget = [rng.choice((1, 1, 2)) for _ in range(2)]
        sequence = partition_vc_budget(budget).arrow_notation()
        mesh = Mesh(*shape)
        pairs = sorted({tuple(sorted((l.src, l.dst))) for l in mesh.links})
        n_fail = rng.choice((1, 1, 2))
        design = None
        for _ in range(8):
            chosen = tuple(rng.sample(pairs, n_fail))
            candidate = FuzzDesign(
                topology_kind="irregular",
                shape=shape,
                sequence=sequence,
                failed_links=chosen,
                label="valid:irregular-alg1",
            )
            try:
                candidate.topology()  # rejects disconnecting failures
            except TopologyError:
                continue
            design = candidate
            break
        if design is None:  # every draw disconnected; keep the mesh intact
            design = FuzzDesign(
                topology_kind="irregular",
                shape=shape,
                sequence=sequence,
                label="valid:irregular-alg1",
            )
        if rng.random() < self.mutant_fraction:
            return self._mutate(design, rng)
        if self._irregular_dead_pairs(design):
            # The failures strand some pair under the design's turns: a
            # genuine topology mutation, so the unroutable verdict is soft.
            return replace(design, label="mutant:link-failures")
        return design

    @staticmethod
    def _irregular_dead_pairs(design: FuzzDesign) -> bool:
        from repro.routing.table import TurnTableRouting

        seq, turnset = design.compile()
        routing = TurnTableRouting(
            design.topology(),
            seq,
            design.class_rule(),
            turnset=turnset,
            validate=False,
            directions="progressive",
            fallback="escape",
        )
        return bool(routing.dead_pairs())

    # -- mutants -----------------------------------------------------------

    def _mutate(self, base: FuzzDesign, rng: random.Random) -> FuzzDesign:
        seq = base.base_sequence()
        makers = {
            "backward-transition": self._backward_transition,
            "add-turn": self._add_turn,
            "drop-channel": self._drop_channel,
        }
        if len(base.shape) >= 2:
            makers["duplicate-pair"] = self._duplicate_pair
        for kind in rng.sample(sorted(makers), len(makers)):
            mutation = makers[kind](seq, base, rng)
            if mutation is not None:
                return FuzzDesign(
                    topology_kind=base.topology_kind,
                    shape=base.shape,
                    sequence=base.sequence,
                    rule=base.rule,
                    mutations=(mutation,),
                    label=f"mutant:{kind}",
                    engine=base.engine,
                    failed_links=base.failed_links,
                )
        # Unreachable for the bases above, but keep the generator total.
        return base

    def _duplicate_pair(
        self, seq: PartitionSequence, base: FuzzDesign, rng: random.Random
    ) -> Mutation | None:
        """Graft a fresh complete pair into a partition that has one."""
        n_dims = len(base.shape)
        candidates = [
            (i, p) for i, p in enumerate(seq) if p.complete_pair_dims
        ]
        if not candidates:
            return None
        idx, part = rng.choice(candidates)
        pair_dim = sorted(part.complete_pair_dims)[0]
        other_dims = [d for d in range(n_dims) if d != pair_dim]
        if not other_dims:
            return None
        dim = rng.choice(other_dims)
        fresh_vc = 1 + max(
            (c.vc for c in seq.all_channels if c.dim == dim), default=0
        )
        # Dateline designs only instantiate tagged channels; graft onto
        # the regular links so the mutant pair carries concrete wires.
        cls = "r" if base.rule == "dateline" else ""
        specs = " ".join(
            str(Channel(dim, sign, fresh_vc, cls)) for sign in (POS, NEG)
        )
        return Mutation("duplicate-pair", partition=idx, channels=specs)

    def _backward_transition(
        self, seq: PartitionSequence, base: FuzzDesign, rng: random.Random
    ) -> Mutation | None:
        """Allow every turn from a later partition back into an earlier one."""
        if len(seq) < 2:
            return None
        src = rng.randrange(1, len(seq))
        dst = rng.randrange(0, src)
        return Mutation("backward-transition", src=src, dst=dst)

    def _add_turn(
        self, seq: PartitionSequence, base: FuzzDesign, rng: random.Random
    ) -> Mutation | None:
        """Add one descending U-/I-turn (breaks the Theorem 2 numbering)."""
        options = []
        for part in seq:
            for dim in sorted(part.complete_pair_dims):
                chans = part.channels_in_dim(dim)
                if len(chans) >= 2:
                    options.append(f"{chans[-1]}->{chans[0]}")
        if not options:
            return None
        return Mutation("add-turn", turn=rng.choice(options))

    def _drop_channel(
        self, seq: PartitionSequence, base: FuzzDesign, rng: random.Random
    ) -> Mutation | None:
        """Remove one channel (escape/connectivity probe)."""
        idx = rng.randrange(len(seq))
        part = seq[idx]
        ch = part.channels[rng.randrange(len(part.channels))]
        return Mutation("drop-channel", partition=idx, channels=str(ch))
