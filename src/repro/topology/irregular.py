"""Irregular topologies: a mesh with failed links (Theorem validity claim).

The paper asserts its theorems hold on irregular networks.  We model
irregularity as a 2D/3D mesh with a set of failed bidirectional links.
Minimal-direction oracles are no longer exact (a productive direction may
be missing), so this topology also provides a BFS-based reachability
oracle used by Up*/Down* routing and by fault-tolerant EbDa designs that
exploit Theorem 2's U-turns for rerouting.
"""

from __future__ import annotations

from collections import deque
from functools import cached_property
from typing import Iterable

from repro.errors import TopologyError
from repro.topology.base import Coord, Link, Topology
from repro.topology.mesh import Mesh


class FaultyMesh(Topology):
    """A mesh with a set of failed (removed) bidirectional links.

    >>> t = FaultyMesh(Mesh(3, 3), failed=[((0, 0), (1, 0))])
    >>> t.has_link((0, 0), (1, 0)) or t.has_link((1, 0), (0, 0))
    False
    """

    def __init__(self, base: Mesh, failed: Iterable[tuple[Coord, Coord]]) -> None:
        self._base = base
        normalized: set[frozenset[Coord]] = set()
        for u, v in failed:
            base.link(u, v)  # raises TopologyError when the link is absent
            normalized.add(frozenset((u, v)))
        self._failed = normalized
        if not self._connected():
            raise TopologyError("failed links disconnect the network")

    def __repr__(self) -> str:
        pairs = sorted(tuple(sorted(f)) for f in self._failed)
        return f"FaultyMesh({self._base!r}, failed={pairs})"

    @property
    def base(self) -> Mesh:
        """The underlying healthy mesh."""
        return self._base

    @property
    def failed_links(self) -> tuple[tuple[Coord, Coord], ...]:
        """The failed links as sorted endpoint pairs."""
        return tuple(sorted(tuple(sorted(f)) for f in self._failed))

    @property
    def n_dims(self) -> int:
        return self._base.n_dims

    @cached_property
    def nodes(self) -> tuple[Coord, ...]:
        return self._base.nodes

    @cached_property
    def links(self) -> tuple[Link, ...]:
        return tuple(
            l for l in self._base.links if frozenset((l.src, l.dst)) not in self._failed
        )

    def _connected(self) -> bool:
        nodes = self._base.nodes
        alive = {
            l.src: [] for l in self._base.links
        }
        adj: dict[Coord, list[Coord]] = {n: [] for n in nodes}
        for l in self._base.links:
            if frozenset((l.src, l.dst)) not in self._failed:
                adj[l.src].append(l.dst)
        seen = {nodes[0]}
        queue = deque([nodes[0]])
        while queue:
            cur = queue.popleft()
            for nxt in adj[cur]:
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return len(seen) == len(nodes)

    def minimal_directions(self, cur: Coord, dst: Coord) -> tuple[tuple[int, int], ...]:
        """Mesh-minimal directions whose links survive.

        May be empty even when ``cur != dst`` (all productive links failed);
        callers needing guaranteed progress should use
        :meth:`progressive_directions`.
        """
        self.validate_node(cur)
        self.validate_node(dst)
        dirs: list[tuple[int, int]] = []
        for dim, sign in self._base.minimal_directions(cur, dst):
            if self._step(cur, dim, sign) is not None:
                dirs.append((dim, sign))
        return tuple(dirs)

    @cached_property
    def _dist_cache(self) -> dict[Coord, dict[Coord, int]]:
        # BFS from every node over surviving links (meshes here are small).
        adj: dict[Coord, list[Coord]] = {n: [] for n in self.nodes}
        for l in self.links:
            adj[l.src].append(l.dst)
        out: dict[Coord, dict[Coord, int]] = {}
        for start in self.nodes:
            dist = {start: 0}
            queue = deque([start])
            while queue:
                cur = queue.popleft()
                for nxt in adj[cur]:
                    if nxt not in dist:
                        dist[nxt] = dist[cur] + 1
                        queue.append(nxt)
            out[start] = dist
        return out

    def distance(self, src: Coord, dst: Coord) -> int:
        self.validate_node(src)
        self.validate_node(dst)
        return self._dist_cache[src][dst]

    def progressive_directions(self, cur: Coord, dst: Coord) -> tuple[tuple[int, int], ...]:
        """Directions that strictly reduce the surviving-graph distance."""
        self.validate_node(cur)
        self.validate_node(dst)
        here = self.distance(cur, dst)
        dirs: list[tuple[int, int]] = []
        for link in self.out_links(cur):
            if self.distance(link.dst, dst) < here:
                dirs.append((link.dim, link.sign))
        return tuple(dirs)
