"""Irregular topologies: a mesh with failed links (Theorem validity claim).

The paper asserts its theorems hold on irregular networks.  We model
irregularity as a 2D/3D mesh with a set of failed bidirectional links
(and, for router failures, a set of failed nodes).  Minimal-direction
oracles are no longer exact (a productive direction may be missing), so
this topology also provides a BFS-based reachability oracle used by
Up*/Down* routing and by fault-tolerant EbDa designs that exploit
Theorem 2's U-turns for rerouting.

The runtime fault-injection path (:mod:`repro.sim.faults`) degrades a
topology incrementally with :meth:`FaultyMesh.without_link` /
:meth:`FaultyMesh.without_router` as failures arrive mid-simulation.
"""

from __future__ import annotations

from collections import deque
from functools import cached_property
from typing import Iterable

from repro.errors import TopologyError
from repro.topology.base import Coord, Link, Topology
from repro.topology.mesh import Mesh  # noqa: F401  (doctest namespace)


class FaultyMesh(Topology):
    """A topology with a set of failed (removed) bidirectional links.

    Despite the historical name, any link-labelled :class:`Topology` can
    serve as the base (mesh, partially connected 3D, ...); the wrapper
    only consults the base's node/link sets and minimal-direction oracle.

    Duplicate failed-link entries (including the same link listed in both
    directions) collapse to one failure; self-loop entries are rejected.

    >>> t = FaultyMesh(Mesh(3, 3), failed=[((0, 0), (1, 0))])
    >>> t.has_link((0, 0), (1, 0)) or t.has_link((1, 0), (0, 0))
    False
    >>> t2 = FaultyMesh(Mesh(3, 3), failed=[((0, 0), (1, 0)), ((1, 0), (0, 0))])
    >>> t2.failed_links
    (((0, 0), (1, 0)),)
    """

    def __init__(
        self,
        base: Topology,
        failed: Iterable[tuple[Coord, Coord]],
        failed_nodes: Iterable[Coord] = (),
    ) -> None:
        self._base = base
        normalized: set[frozenset[Coord]] = set()
        for u, v in failed:
            if u == v:
                raise TopologyError(f"self-loop failed-link entry {u} -> {v}")
            base.link(u, v)  # raises TopologyError when the link is absent
            normalized.add(frozenset((u, v)))
        self._failed = normalized
        dead_nodes: set[Coord] = set()
        for node in failed_nodes:
            base.validate_node(node)
            dead_nodes.add(node)
        self._failed_nodes = dead_nodes
        if not self._connected():
            raise TopologyError("failures disconnect the network")

    def __repr__(self) -> str:
        pairs = sorted(tuple(sorted(f)) for f in self._failed)
        extra = f", failed_nodes={sorted(self._failed_nodes)}" if self._failed_nodes else ""
        return f"FaultyMesh({self._base!r}, failed={pairs}{extra})"

    @property
    def base(self) -> Topology:
        """The underlying healthy topology."""
        return self._base

    @property
    def failed_links(self) -> tuple[tuple[Coord, Coord], ...]:
        """The failed links as sorted endpoint pairs."""
        return tuple(sorted(tuple(sorted(f)) for f in self._failed))

    @property
    def failed_nodes(self) -> tuple[Coord, ...]:
        """Failed routers (removed together with all their links)."""
        return tuple(sorted(self._failed_nodes))

    def without_link(self, u: Coord, v: Coord) -> "FaultyMesh":
        """A copy of this topology with one more failed link.

        This is the incremental-degradation step the runtime rerouting
        path uses when a link fails mid-simulation.  Raises
        :class:`~repro.errors.TopologyError` when the extra failure would
        disconnect the network (or the link does not exist / is a
        self-loop).

        >>> t = FaultyMesh(Mesh(3, 3), failed=[])
        >>> t2 = t.without_link((0, 0), (1, 0))
        >>> t2.failed_links
        (((0, 0), (1, 0)),)
        >>> t2.has_link((1, 0), (0, 0))
        False
        >>> len(t.links) - len(t2.links)
        2
        """
        return FaultyMesh(
            self._base,
            list(self.failed_links) + [(u, v)],
            self._failed_nodes,
        )

    def without_router(self, node: Coord) -> "FaultyMesh":
        """A copy of this topology with one more failed router.

        >>> t = FaultyMesh(Mesh(3, 3), failed=[]).without_router((1, 1))
        >>> (1, 1) in t.nodes
        False
        >>> any((1, 1) in (l.src, l.dst) for l in t.links)
        False
        """
        return FaultyMesh(
            self._base,
            self.failed_links,
            set(self._failed_nodes) | {node},
        )

    @property
    def n_dims(self) -> int:
        return self._base.n_dims

    @cached_property
    def nodes(self) -> tuple[Coord, ...]:
        if not self._failed_nodes:
            return self._base.nodes
        return tuple(n for n in self._base.nodes if n not in self._failed_nodes)

    @cached_property
    def links(self) -> tuple[Link, ...]:
        return tuple(
            l
            for l in self._base.links
            if frozenset((l.src, l.dst)) not in self._failed
            and l.src not in self._failed_nodes
            and l.dst not in self._failed_nodes
        )

    @cached_property
    def endpoints(self) -> tuple[Coord, ...]:
        if not self._failed_nodes:
            return self._base.endpoints
        return tuple(n for n in self._base.endpoints if n not in self._failed_nodes)

    def _connected(self) -> bool:
        nodes = [n for n in self._base.nodes if n not in self._failed_nodes]
        if not nodes:
            return False
        adj: dict[Coord, list[Coord]] = {n: [] for n in nodes}
        for l in self._base.links:
            if (
                frozenset((l.src, l.dst)) not in self._failed
                and l.src not in self._failed_nodes
                and l.dst not in self._failed_nodes
            ):
                adj[l.src].append(l.dst)
        seen = {nodes[0]}
        queue = deque([nodes[0]])
        while queue:
            cur = queue.popleft()
            for nxt in adj[cur]:
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return len(seen) == len(nodes)

    def minimal_directions(self, cur: Coord, dst: Coord) -> tuple[tuple[int, int], ...]:
        """Base-minimal directions whose links survive.

        May be empty even when ``cur != dst`` (all productive links failed);
        callers needing guaranteed progress should use
        :meth:`progressive_directions`.
        """
        self.validate_node(cur)
        self.validate_node(dst)
        dirs: list[tuple[int, int]] = []
        for dim, sign in self._base.minimal_directions(cur, dst):
            if self._step(cur, dim, sign) is not None:
                dirs.append((dim, sign))
        return tuple(dirs)

    @cached_property
    def _dist_cache(self) -> dict[Coord, dict[Coord, int]]:
        # BFS from every node over surviving links (meshes here are small).
        adj: dict[Coord, list[Coord]] = {n: [] for n in self.nodes}
        for l in self.links:
            adj[l.src].append(l.dst)
        out: dict[Coord, dict[Coord, int]] = {}
        for start in self.nodes:
            dist = {start: 0}
            queue = deque([start])
            while queue:
                cur = queue.popleft()
                for nxt in adj[cur]:
                    if nxt not in dist:
                        dist[nxt] = dist[cur] + 1
                        queue.append(nxt)
            out[start] = dist
        return out

    def distance(self, src: Coord, dst: Coord) -> int:
        self.validate_node(src)
        self.validate_node(dst)
        return self._dist_cache[src][dst]

    def progressive_directions(self, cur: Coord, dst: Coord) -> tuple[tuple[int, int], ...]:
        """Directions that strictly reduce the surviving-graph distance."""
        self.validate_node(cur)
        self.validate_node(dst)
        here = self.distance(cur, dst)
        dirs: list[tuple[int, int]] = []
        for link in self.out_links(cur):
            if self.distance(link.dst, dst) < here:
                dirs.append((link.dim, link.sign))
        return tuple(dirs)


class GraphTopology(Topology):
    """An arbitrary directed graph as a topology (every link dim 0, sign +1).

    The carrier for arbitrary-network analyses
    (:mod:`repro.core.arbitrary`): nodes are whatever hashable coordinate
    tuples the caller supplies, links are exactly the given directed edges,
    and — since an arbitrary digraph has no geometry — all links share one
    ``(dim=0, sign=+1)`` label, leaving structure to channel classes and
    the dependency relation.  Need not be connected or even have a link
    from every node.

    >>> g = GraphTopology([((0,), (1,)), ((1,), (0,))])
    >>> len(g.nodes), len(g.links)
    (2, 2)
    """

    def __init__(
        self,
        edges: Iterable[tuple[Coord, Coord]],
        nodes: Iterable[Coord] = (),
    ) -> None:
        edge_set: set[tuple[Coord, Coord]] = set()
        node_set: set[Coord] = set(nodes)
        for u, v in edges:
            if u == v:
                raise TopologyError(f"self-loop edge {u} -> {v}")
            edge_set.add((u, v))
            node_set.add(u)
            node_set.add(v)
        if not node_set:
            raise TopologyError("a graph topology needs at least one node")
        self._edges = tuple(sorted(edge_set))
        self._nodes = tuple(sorted(node_set))

    def __repr__(self) -> str:
        return f"GraphTopology({len(self._nodes)} nodes, {len(self._edges)} edges)"

    @property
    def n_dims(self) -> int:
        return 1

    @property
    def nodes(self) -> tuple[Coord, ...]:
        return self._nodes

    @cached_property
    def links(self) -> tuple[Link, ...]:
        return tuple(Link(u, v, 0, +1) for u, v in self._edges)

    @cached_property
    def _graph_dist(self) -> dict[Coord, dict[Coord, int]]:
        adj: dict[Coord, list[Coord]] = {n: [] for n in self._nodes}
        for u, v in self._edges:
            adj[u].append(v)
        out: dict[Coord, dict[Coord, int]] = {}
        for start in self._nodes:
            dist = {start: 0}
            queue = deque([start])
            while queue:
                cur = queue.popleft()
                for nxt in adj[cur]:
                    if nxt not in dist:
                        dist[nxt] = dist[cur] + 1
                        queue.append(nxt)
            out[start] = dist
        return out

    def distance(self, src: Coord, dst: Coord) -> int:
        self.validate_node(src)
        self.validate_node(dst)
        try:
            return self._graph_dist[src][dst]
        except KeyError:
            raise TopologyError(f"no directed path {src} -> {dst}") from None

    def minimal_directions(self, cur: Coord, dst: Coord) -> tuple[tuple[int, int], ...]:
        """``((0, +1),)`` whenever any out-link shortens the path."""
        self.validate_node(cur)
        self.validate_node(dst)
        if cur == dst:
            return ()
        here = self._graph_dist[cur].get(dst)
        if here is None:
            return ()
        for link in self.out_links(cur):
            if self._graph_dist[link.dst].get(dst, here) < here:
                return ((0, +1),)
        return ()

    def progressive_directions(self, cur: Coord, dst: Coord) -> tuple[tuple[int, int], ...]:
        """Same as :meth:`minimal_directions` (one direction label)."""
        return self.minimal_directions(cur, dst)
