"""Wires: concrete instantiations of design channels on topology links.

A :class:`Wire` is one buffered virtual channel on one physical link — the
unit the channel dependency graph and the simulator operate on.  A design
channel class ``X2+`` instantiates into one wire per ``(dim=0, sign=+1)``
link whose spatial-class tag matches the channel's ``cls``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.channel import Channel
from repro.errors import TopologyError
from repro.topology.base import Coord, Link, Topology
from repro.topology.classes import ClassRule, no_classes


@dataclass(frozen=True, order=True)
class Wire:
    """One virtual channel on one physical link."""

    link: Link
    channel: Channel

    def __str__(self) -> str:
        return f"{self.channel}@{self.link.src}->{self.link.dst}"

    @property
    def src(self) -> Coord:
        return self.link.src

    @property
    def dst(self) -> Coord:
        return self.link.dst


def wires_for(
    topology: Topology,
    channel_classes: Iterable[Channel],
    rule: ClassRule = no_classes,
) -> tuple[Wire, ...]:
    """Instantiate channel classes on every matching link.

    >>> from repro.topology.mesh import Mesh
    >>> from repro.core.channel import channels
    >>> len(wires_for(Mesh(3, 3), channels("X+ X- Y+ Y-")))
    24
    """
    classes = tuple(channel_classes)
    out: list[Wire] = []
    for link in topology.links:
        tag = rule(link)
        for ch in classes:
            if ch.dim == link.dim and ch.sign == link.sign and ch.cls == tag:
                out.append(Wire(link, ch))
    return tuple(out)


def wires_by_link(
    topology: Topology,
    channel_classes: Iterable[Channel],
    rule: ClassRule = no_classes,
) -> dict[Link, tuple[Wire, ...]]:
    """Group instantiated wires per physical link (the link's VC set)."""
    grouped: dict[Link, list[Wire]] = {}
    for wire in wires_for(topology, channel_classes, rule):
        grouped.setdefault(wire.link, []).append(wire)
    return {link: tuple(ws) for link, ws in grouped.items()}


def check_full_instantiation(
    topology: Topology,
    channel_classes: Iterable[Channel],
    rule: ClassRule = no_classes,
) -> None:
    """Raise :class:`TopologyError` when some link carries no wire at all.

    A design that leaves a link without any channel cannot route packets
    over it; detecting this early catches mismatched class rules (e.g. an
    Odd-Even design deployed without the column-parity rule).
    """
    grouped = wires_by_link(topology, channel_classes, rule)
    bare = [link for link in topology.links if link not in grouped]
    if bare:
        sample = ", ".join(str(l) for l in bare[:4])
        raise TopologyError(
            f"{len(bare)} links carry no channel (e.g. {sample}); "
            "check the design's classes against the class rule"
        )
