"""Dragonfly topology (the paper's declared future work, §3.1).

A canonical small dragonfly: ``groups`` groups of ``a = groups - 1``
routers each; routers within a group form a complete local graph; every
pair of groups is connected by exactly one global link, and every router
terminates exactly one global link.  Routers are the traffic endpoints.

Link labelling: local links carry ``dim=0``, global links ``dim=1`` (both
``sign=+1`` — dragonfly links have no geometric direction; the EbDa
structure lives in the *class* ordering ``L1 -> G -> L2``, see
:class:`repro.routing.dragonfly.DragonflyRouting`).
"""

from __future__ import annotations

from functools import cached_property
from itertools import combinations

from repro.errors import TopologyError
from repro.topology.base import Coord, Link, Topology

#: Link dimension labels.
LOCAL_DIM = 0
GLOBAL_DIM = 1


class Dragonfly(Topology):
    """A fully-subscribed small dragonfly: ``a = groups - 1``.

    Node coordinates are ``(group, router)``.

    >>> d = Dragonfly(groups=4)
    >>> len(d.nodes), sum(1 for l in d.links if l.dim == GLOBAL_DIM)
    (12, 12)
    """

    def __init__(self, groups: int = 4) -> None:
        if groups < 3:
            raise TopologyError("a dragonfly needs at least 3 groups")
        self._groups = groups
        self._per_group = groups - 1

    def __repr__(self) -> str:
        return f"Dragonfly(groups={self._groups})"

    @property
    def groups(self) -> int:
        return self._groups

    @property
    def routers_per_group(self) -> int:
        return self._per_group

    @property
    def n_dims(self) -> int:
        return 2  # (local, global) link dimensions

    @cached_property
    def nodes(self) -> tuple[Coord, ...]:
        return tuple(
            (g, r) for g in range(self._groups) for r in range(self._per_group)
        )

    @cached_property
    def global_peer(self) -> dict[Coord, Coord]:
        """The far end of each router's single global link."""
        # Assign the k-th pair each group sees to its k-th router.
        next_slot = [0] * self._groups
        peer: dict[Coord, Coord] = {}
        for m, n in combinations(range(self._groups), 2):
            a = (m, next_slot[m])
            b = (n, next_slot[n])
            next_slot[m] += 1
            next_slot[n] += 1
            peer[a] = b
            peer[b] = a
        return peer

    @cached_property
    def links(self) -> tuple[Link, ...]:
        out: list[Link] = []
        for g in range(self._groups):
            for r1 in range(self._per_group):
                for r2 in range(self._per_group):
                    if r1 != r2:
                        out.append(Link((g, r1), (g, r2), LOCAL_DIM, +1))
        for a, b in self.global_peer.items():
            out.append(Link(a, b, GLOBAL_DIM, +1))
        return tuple(out)

    def gateway(self, src_group: int, dst_group: int) -> Coord:
        """The router in ``src_group`` owning the global link to ``dst_group``."""
        if src_group == dst_group:
            raise TopologyError("no gateway within a group")
        for r in range(self._per_group):
            node = (src_group, r)
            if self.global_peer[node][0] == dst_group:
                return node
        raise TopologyError(
            f"no global link from group {src_group} to {dst_group}"
        )  # pragma: no cover - construction guarantees one

    def distance(self, src: Coord, dst: Coord) -> int:
        self.validate_node(src)
        self.validate_node(dst)
        if src == dst:
            return 0
        if src[0] == dst[0]:
            return 1  # complete local graph
        gw = self.gateway(src[0], dst[0])
        far = self.global_peer[gw]
        hops = 1  # the global hop
        if src != gw:
            hops += 1
        if far != dst:
            hops += 1
        return hops

    def minimal_directions(self, cur: Coord, dst: Coord) -> tuple[tuple[int, int], ...]:
        """Coarse oracle (link-dimension granularity); routing uses
        :class:`~repro.routing.dragonfly.DragonflyRouting` for per-link
        decisions."""
        self.validate_node(cur)
        self.validate_node(dst)
        if cur == dst:
            return ()
        here = self.distance(cur, dst)
        dims: set[tuple[int, int]] = set()
        for link in self.out_links(cur):
            if self.distance(link.dst, dst) < here:
                dims.add((link.dim, link.sign))
        return tuple(sorted(dims))
