"""Topology abstractions: nodes, directed links, dimension geometry.

A topology is a directed graph over integer-coordinate nodes where every
link is labelled with the dimension it traverses and its direction sign.
The label is what connects the physical network to the EbDa channel
algebra: a design channel ``X2+`` is *instantiated* on every link labelled
``(dim=0, sign=+1)`` whose spatial class matches (see
:mod:`repro.topology.classes`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from functools import cached_property
from typing import Sequence

from repro.errors import TopologyError

Coord = tuple[int, ...]


@dataclass(frozen=True, order=True)
class Link:
    """A unidirectional physical link labelled with its geometry.

    ``dim``/``sign`` describe the move the link performs; a torus wrap link
    from ``(3, 0)`` to ``(0, 0)`` still has ``dim=0, sign=+1`` because the
    packet moves in the increasing-X direction (modulo the ring).
    """

    src: Coord
    dst: Coord
    dim: int
    sign: int

    def __str__(self) -> str:
        return f"{self.src}->{self.dst}"

    @property
    def is_wraparound(self) -> bool:
        """True for torus wrap links (coordinate jumps against the sign)."""
        delta = self.dst[self.dim] - self.src[self.dim]
        return delta * self.sign < 0


class Topology(ABC):
    """Base class for all network shapes.

    Concrete subclasses provide the node set, the link set and the minimal
    direction oracle; everything else (lookup maps, adjacency) derives from
    those.
    """

    @property
    @abstractmethod
    def n_dims(self) -> int:
        """Number of dimensions."""

    @property
    @abstractmethod
    def nodes(self) -> tuple[Coord, ...]:
        """Every node coordinate."""

    @property
    @abstractmethod
    def links(self) -> tuple[Link, ...]:
        """Every unidirectional link."""

    @abstractmethod
    def minimal_directions(self, cur: Coord, dst: Coord) -> tuple[tuple[int, int], ...]:
        """The productive ``(dim, sign)`` moves from ``cur`` toward ``dst``.

        Empty exactly when ``cur == dst``.
        """

    # -- derived structure ---------------------------------------------------

    @property
    def endpoints(self) -> tuple[Coord, ...]:
        """Nodes that source/sink traffic (all of them, unless a topology
        distinguishes terminals from switches — e.g. fat-trees)."""
        return self.nodes

    @cached_property
    def node_set(self) -> frozenset[Coord]:
        return frozenset(self.nodes)

    @cached_property
    def _out_links(self) -> dict[Coord, tuple[Link, ...]]:
        out: dict[Coord, list[Link]] = {node: [] for node in self.nodes}
        for link in self.links:
            out[link.src].append(link)
        return {node: tuple(ls) for node, ls in out.items()}

    @cached_property
    def _in_links(self) -> dict[Coord, tuple[Link, ...]]:
        inn: dict[Coord, list[Link]] = {node: [] for node in self.nodes}
        for link in self.links:
            inn[link.dst].append(link)
        return {node: tuple(ls) for node, ls in inn.items()}

    @cached_property
    def _link_map(self) -> dict[tuple[Coord, Coord], Link]:
        return {(l.src, l.dst): l for l in self.links}

    def out_links(self, node: Coord) -> tuple[Link, ...]:
        """Links leaving ``node``."""
        try:
            return self._out_links[node]
        except KeyError:
            raise TopologyError(f"node {node} is not in the topology") from None

    def in_links(self, node: Coord) -> tuple[Link, ...]:
        """Links arriving at ``node``."""
        try:
            return self._in_links[node]
        except KeyError:
            raise TopologyError(f"node {node} is not in the topology") from None

    def link(self, src: Coord, dst: Coord) -> Link:
        """The link from ``src`` to ``dst``."""
        try:
            return self._link_map[(src, dst)]
        except KeyError:
            raise TopologyError(f"no link {src} -> {dst}") from None

    def has_link(self, src: Coord, dst: Coord) -> bool:
        """True when a direct link exists."""
        return (src, dst) in self._link_map

    def neighbors(self, node: Coord) -> tuple[Coord, ...]:
        """Nodes one hop away from ``node``."""
        return tuple(l.dst for l in self.out_links(node))

    def distance(self, src: Coord, dst: Coord) -> int:
        """Minimal hop count from ``src`` to ``dst``."""
        total = 0
        cur = src
        # Generic implementation: walk greedily using the minimal-direction
        # oracle; subclasses with closed forms override this.
        visited = 0
        while cur != dst:
            dirs = self.minimal_directions(cur, dst)
            if not dirs:
                raise TopologyError(f"no minimal route from {cur} to {dst}")
            dim, sign = dirs[0]
            nxt = self._step(cur, dim, sign)
            if nxt is None:
                raise TopologyError(f"cannot move {dim_sign(dim, sign)} from {cur}")
            cur = nxt
            total += 1
            visited += 1
            if visited > len(self.nodes):
                raise TopologyError("distance walk did not converge")
        return total

    def _step(self, cur: Coord, dim: int, sign: int) -> Coord | None:
        """The neighbour reached by moving (dim, sign), if the link exists."""
        for link in self.out_links(cur):
            if link.dim == dim and link.sign == sign:
                return link.dst
        return None

    def validate_node(self, node: Coord) -> Coord:
        """Raise :class:`TopologyError` unless ``node`` exists."""
        if node not in self.node_set:
            raise TopologyError(f"node {node} is not in the topology")
        return node


def dim_sign(dim: int, sign: int) -> str:
    """Human-readable direction label, e.g. ``'X+'``."""
    from repro.core.channel import dim_name

    return f"{dim_name(dim)}{'+' if sign > 0 else '-'}"


def grid_nodes(shape: Sequence[int]) -> tuple[Coord, ...]:
    """All coordinates of a dense grid with the given per-dimension sizes."""
    if not shape or any(k < 1 for k in shape):
        raise TopologyError(f"invalid grid shape {tuple(shape)}")
    coords: list[Coord] = [()]
    for size in shape:
        coords = [c + (i,) for c in coords for i in range(size)]
    # Build in row-major order over the *last* dimension fastest; reorder so
    # the first dimension varies fastest for readability.
    return tuple(sorted(coords))
