"""Spatial class rules: binding channel classes to concrete links.

Definition 6 allows partitioning by *location* as well as by direction —
"channels located in different rows are disjoint such as X_even and
X_odd".  A :class:`ClassRule` assigns every link the spatial-class tag a
design channel must carry to be instantiated on that link: a design
channel exists on a link iff its ``cls`` equals the rule's tag for the
link.

Rules used by the paper's case studies:

* :func:`no_classes` — everything untagged (the common case);
* :func:`column_parity` — Y links tagged ``e``/``o`` by their column's X
  coordinate (the Odd-Even model, Figure 10);
* :func:`row_parity` — X links tagged by their row's Y coordinate (the
  Hamiltonian-path strategy, §6.2).
"""

from __future__ import annotations

from typing import Callable

from repro.topology.base import Link

#: A rule maps each link to the class tag channels need to ride it.
ClassRule = Callable[[Link], str]


def no_classes(link: Link) -> str:
    """Every link untagged — designs without spatial classes."""
    return ""


def column_parity(link: Link) -> str:
    """Odd-Even classing: Y links tagged by the parity of their column.

    A Y link never changes the X coordinate, so ``src[0]`` identifies the
    column.  X links stay untagged.
    """
    if link.dim == 1:
        return "e" if link.src[0] % 2 == 0 else "o"
    return ""


def row_parity(link: Link) -> str:
    """Hamiltonian-path classing: X links tagged by the parity of their row."""
    if link.dim == 0:
        return "e" if link.src[1] % 2 == 0 else "o"
    return ""


def parity_rule(classed_dim: int, parity_of: int) -> ClassRule:
    """A general parity rule: tag ``classed_dim`` links by coordinate ``parity_of``."""

    def rule(link: Link) -> str:
        if link.dim == classed_dim:
            return "e" if link.src[parity_of] % 2 == 0 else "o"
        return ""

    return rule


def dateline(link: Link) -> str:
    """Torus dateline classing: wrap links tagged ``w``, others ``r``.

    With channels split into pre-/post-dateline VCs (see
    :func:`repro.core.torus_designs.dateline_design`), the wrap link is
    the only place packets may switch VC — the EbDa rendering of Dally's
    dateline scheme and of the paper's Theorem-2 remark that each
    wrap-around channel contributes two unidirectional channels plus two
    U-turns.
    """
    return "w" if link.is_wraparound else "r"


def local_global(link: Link) -> str:
    """Dragonfly classing: local links tagged ``l``, global links ``g``.

    The canonical form of :func:`repro.routing.dragonfly.dragonfly_rule`
    (same tags, importable without the routing package) — dragonfly links
    have no geometric direction, so the EbDa structure lives entirely in
    the ``L1 -> G -> L2`` class ordering.
    """
    from repro.topology.dragonfly import LOCAL_DIM

    return "l" if link.dim == LOCAL_DIM else "g"


def up_down_signs(link: Link) -> str:
    """Up*/Down* classing by link sign: ``+`` up (``u``), ``-`` down (``d``).

    Exact for topologies whose link signs encode the level direction —
    the two-level :class:`~repro.topology.fattree.FatTree` labels every
    terminal→leaf and leaf→spine link ``+1`` and the reverse links ``-1``,
    so this rule coincides with the tags
    :meth:`~repro.routing.updown.UpDownRouting.class_rule` derives from
    explicit levels.  Topologies without sign-encoded levels (dragonfly:
    every link is ``+1``) need the BFS-level rule from a routing instance
    instead.
    """
    return "u" if link.sign > 0 else "d"


#: Named rules for lookups in experiment configuration.
NAMED_RULES: dict[str, ClassRule] = {
    "none": no_classes,
    "column-parity": column_parity,
    "row-parity": row_parity,
    "dateline": dateline,
    "dragonfly": local_global,
    "updown-signs": up_down_signs,
}


def rule_for_design(design_name: str) -> ClassRule:
    """The class rule each catalog design expects.

    Designs without spatial classes use :func:`no_classes`.
    """
    if design_name == "odd-even":
        return column_parity
    if design_name == "hamiltonian":
        return row_parity
    if design_name in ("dragonfly-minimal", "dragonfly-valiant"):
        return local_global
    if design_name == "fattree-updown":
        return up_down_signs
    return no_classes
