"""n-dimensional mesh topology (Assumption 3)."""

from __future__ import annotations

from functools import cached_property

from repro.errors import TopologyError
from repro.topology.base import Coord, Link, Topology, grid_nodes


class Mesh(Topology):
    """A dense n-dimensional mesh.

    ``Mesh(4, 4)`` is the classic 4x4 2D mesh; ``Mesh(4, 4, 2)`` a 3D one.
    Every interior node connects to both neighbours along each dimension
    with a pair of unidirectional links.

    >>> m = Mesh(3, 3)
    >>> len(m.nodes), len(m.links)
    (9, 24)
    """

    def __init__(self, *shape: int) -> None:
        if not shape:
            raise TopologyError("a mesh needs at least one dimension")
        if any(k < 2 for k in shape):
            raise TopologyError(f"every mesh dimension needs size >= 2, got {shape}")
        self._shape = tuple(shape)

    def __repr__(self) -> str:
        return f"Mesh{self._shape}"

    @property
    def shape(self) -> tuple[int, ...]:
        """Per-dimension sizes."""
        return self._shape

    @property
    def n_dims(self) -> int:
        return len(self._shape)

    @cached_property
    def nodes(self) -> tuple[Coord, ...]:
        return grid_nodes(self._shape)

    @cached_property
    def links(self) -> tuple[Link, ...]:
        out: list[Link] = []
        for node in self.nodes:
            for dim, size in enumerate(self._shape):
                if node[dim] + 1 < size:
                    up = node[:dim] + (node[dim] + 1,) + node[dim + 1:]
                    out.append(Link(node, up, dim, +1))
                    out.append(Link(up, node, dim, -1))
        return tuple(out)

    def minimal_directions(self, cur: Coord, dst: Coord) -> tuple[tuple[int, int], ...]:
        self.validate_node(cur)
        self.validate_node(dst)
        dirs: list[tuple[int, int]] = []
        for dim in range(self.n_dims):
            if dst[dim] > cur[dim]:
                dirs.append((dim, +1))
            elif dst[dim] < cur[dim]:
                dirs.append((dim, -1))
        return tuple(dirs)

    def distance(self, src: Coord, dst: Coord) -> int:
        self.validate_node(src)
        self.validate_node(dst)
        return sum(abs(a - b) for a, b in zip(src, dst))

    def minimal_path_count(self, src: Coord, dst: Coord) -> int:
        """Number of distinct minimal paths (multinomial coefficient)."""
        from math import factorial

        deltas = [abs(a - b) for a, b in zip(src, dst)]
        total = factorial(sum(deltas))
        for d in deltas:
            total //= factorial(d)
        return total
