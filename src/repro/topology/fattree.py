"""k-ary fat-tree topology (the paper's declared future work, §3.1).

A two-level fat-tree (leaf/spine Clos): ``leaves`` leaf switches, each
hosting ``hosts_per_leaf`` terminals, fully connected to ``spines`` spine
switches.  Terminals are the traffic endpoints; switches only forward.

Coordinates (single "level" dimension keeps the Link dim/sign labelling
meaningful — up moves are ``(0, +1)``, down moves ``(0, -1)``):

* terminal  ``(0, leaf_index * hosts_per_leaf + slot)``
* leaf      ``(1, leaf_index)``
* spine     ``(2, spine_index)``

Up*/Down* over this topology — all up hops, then all down hops — is the
canonical deadlock-free routing, and in EbDa terms it is two consecutively
ordered link-class partitions (``u`` then ``d``), verified acyclic by the
concrete CDG like every other design in this library.
"""

from __future__ import annotations

from collections import deque
from functools import cached_property

from repro.errors import TopologyError
from repro.topology.base import Coord, Link, Topology


class FatTree(Topology):
    """Two-level k-ary fat-tree with explicit terminals.

    >>> ft = FatTree(leaves=4, spines=2, hosts_per_leaf=2)
    >>> len(ft.endpoints), len(ft.nodes)
    (8, 14)
    """

    def __init__(self, leaves: int = 4, spines: int = 2, hosts_per_leaf: int = 2) -> None:
        if leaves < 2 or spines < 1 or hosts_per_leaf < 1:
            raise TopologyError("fat-tree needs >=2 leaves, >=1 spine, >=1 host/leaf")
        self._leaves = leaves
        self._spines = spines
        self._hosts = hosts_per_leaf

    def __repr__(self) -> str:
        return f"FatTree(leaves={self._leaves}, spines={self._spines}, hosts_per_leaf={self._hosts})"

    @property
    def n_dims(self) -> int:
        return 1

    @cached_property
    def nodes(self) -> tuple[Coord, ...]:
        terminals = [(0, i) for i in range(self._leaves * self._hosts)]
        leaf_switches = [(1, i) for i in range(self._leaves)]
        spines = [(2, i) for i in range(self._spines)]
        return tuple(terminals + leaf_switches + spines)

    @cached_property
    def endpoints(self) -> tuple[Coord, ...]:
        """Terminals — the only nodes that source/sink traffic."""
        return tuple(n for n in self.nodes if n[0] == 0)

    def leaf_of(self, terminal: Coord) -> Coord:
        """The leaf switch a terminal hangs off."""
        if terminal[0] != 0:
            raise TopologyError(f"{terminal} is not a terminal")
        return (1, terminal[1] // self._hosts)

    @cached_property
    def links(self) -> tuple[Link, ...]:
        out: list[Link] = []
        for t in self.endpoints:
            leaf = self.leaf_of(t)
            out.append(Link(t, leaf, 0, +1))      # up: terminal -> leaf
            out.append(Link(leaf, t, 0, -1))      # down: leaf -> terminal
        for li in range(self._leaves):
            for si in range(self._spines):
                leaf, spine = (1, li), (2, si)
                out.append(Link(leaf, spine, 0, +1))
                out.append(Link(spine, leaf, 0, -1))
        return tuple(out)

    @cached_property
    def _dist(self) -> dict[Coord, dict[Coord, int]]:
        adj: dict[Coord, list[Coord]] = {n: [] for n in self.nodes}
        for l in self.links:
            adj[l.src].append(l.dst)
        out: dict[Coord, dict[Coord, int]] = {}
        for start in self.nodes:
            dist = {start: 0}
            queue = deque([start])
            while queue:
                cur = queue.popleft()
                for nxt in adj[cur]:
                    if nxt not in dist:
                        dist[nxt] = dist[cur] + 1
                        queue.append(nxt)
            out[start] = dist
        return out

    def distance(self, src: Coord, dst: Coord) -> int:
        self.validate_node(src)
        self.validate_node(dst)
        return self._dist[src][dst]

    def minimal_directions(self, cur: Coord, dst: Coord) -> tuple[tuple[int, int], ...]:
        """Directions (up/down) of links that shorten the distance."""
        self.validate_node(cur)
        self.validate_node(dst)
        here = self.distance(cur, dst)
        dirs: set[tuple[int, int]] = set()
        for link in self.out_links(cur):
            if self.distance(link.dst, dst) < here:
                dirs.add((link.dim, link.sign))
        return tuple(sorted(dirs))
