"""k-ary n-cube (torus) topology (Assumption 3).

Wrap-around links carry the same (dim, sign) label as regular links — a
packet crossing the wrap in the increasing direction is still moving
``D+``.  The minimal-direction oracle picks the shorter way around each
ring (both ways on a tie), which is what gives tori their characteristic
channel-dependency cycles and makes them the interesting verification
target for Theorem 2's wrap-around U-turn remark.
"""

from __future__ import annotations

from functools import cached_property

from repro.errors import TopologyError
from repro.topology.base import Coord, Link, Topology, grid_nodes


class Torus(Topology):
    """A k-ary n-cube.

    ``Torus(4, 4)`` is a 4-ary 2-cube.  Rings of size 2 would duplicate
    links, so every dimension needs size >= 3.

    >>> t = Torus(4, 4)
    >>> len(t.nodes), len(t.links)
    (16, 64)
    """

    def __init__(self, *shape: int) -> None:
        if not shape:
            raise TopologyError("a torus needs at least one dimension")
        if any(k < 3 for k in shape):
            raise TopologyError(f"every torus dimension needs size >= 3, got {shape}")
        self._shape = tuple(shape)

    def __repr__(self) -> str:
        return f"Torus{self._shape}"

    @property
    def shape(self) -> tuple[int, ...]:
        """Per-dimension ring sizes."""
        return self._shape

    @property
    def n_dims(self) -> int:
        return len(self._shape)

    @cached_property
    def nodes(self) -> tuple[Coord, ...]:
        return grid_nodes(self._shape)

    @cached_property
    def links(self) -> tuple[Link, ...]:
        out: list[Link] = []
        for node in self.nodes:
            for dim, size in enumerate(self._shape):
                up = node[:dim] + ((node[dim] + 1) % size,) + node[dim + 1:]
                out.append(Link(node, up, dim, +1))
                out.append(Link(up, node, dim, -1))
        return tuple(out)

    def ring_offset(self, cur: int, dst: int, dim: int) -> int:
        """Signed shortest offset along one ring (positive ties preferred)."""
        size = self._shape[dim]
        fwd = (dst - cur) % size
        bwd = fwd - size
        return fwd if fwd <= -bwd else bwd

    def minimal_directions(self, cur: Coord, dst: Coord) -> tuple[tuple[int, int], ...]:
        self.validate_node(cur)
        self.validate_node(dst)
        dirs: list[tuple[int, int]] = []
        for dim, size in enumerate(self._shape):
            fwd = (dst[dim] - cur[dim]) % size
            if fwd == 0:
                continue
            bwd = size - fwd
            if fwd <= bwd:
                dirs.append((dim, +1))
            if bwd <= fwd:
                dirs.append((dim, -1))
        return tuple(dirs)

    def distance(self, src: Coord, dst: Coord) -> int:
        self.validate_node(src)
        self.validate_node(dst)
        return sum(
            min((d - s) % k, (s - d) % k)
            for s, d, k in zip(src, dst, self._shape)
        )
