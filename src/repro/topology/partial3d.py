"""Vertically partially connected 3D mesh (Section 6.3).

TSV-based 3D NoCs often provide vertical (Z) links only at a subset of
(x, y) positions — the *elevators*.  Packets travel within a layer via the
full 2D mesh and change layers only at elevator columns.  This is the
substrate for the Elevator-First baseline and the paper's §6.3 design.
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterable

from repro.errors import TopologyError
from repro.topology.base import Coord, Link, Topology, grid_nodes


class PartiallyConnected3D(Topology):
    """A 3D mesh whose Z links exist only at elevator (x, y) positions.

    Parameters
    ----------
    x, y, z:
        Grid sizes (z = number of layers).
    elevators:
        Iterable of (x, y) positions that have vertical links through all
        layers.  Defaults to the four quadrant centres, giving a connected
        and reasonably balanced placement.

    >>> t = PartiallyConnected3D(4, 4, 2, elevators=[(0, 0), (3, 3)])
    >>> sum(1 for l in t.links if l.dim == 2)
    4
    """

    def __init__(
        self,
        x: int,
        y: int,
        z: int,
        elevators: Iterable[tuple[int, int]] | None = None,
    ) -> None:
        if x < 2 or y < 2 or z < 2:
            raise TopologyError("partial 3D mesh needs x, y, z >= 2")
        self._shape = (x, y, z)
        if elevators is None:
            elevators = [
                (x // 4, y // 4),
                (3 * x // 4, y // 4),
                (x // 4, 3 * y // 4),
                (3 * x // 4, 3 * y // 4),
            ]
        self._elevators = tuple(sorted(set(elevators)))
        for ex, ey in self._elevators:
            if not (0 <= ex < x and 0 <= ey < y):
                raise TopologyError(f"elevator ({ex}, {ey}) outside the {x}x{y} layer")
        if not self._elevators:
            raise TopologyError("at least one elevator is required")

    def __repr__(self) -> str:
        return f"PartiallyConnected3D{self._shape}(elevators={self._elevators})"

    @property
    def shape(self) -> tuple[int, int, int]:
        return self._shape

    @property
    def elevators(self) -> tuple[tuple[int, int], ...]:
        """The (x, y) positions owning vertical links."""
        return self._elevators

    @property
    def n_dims(self) -> int:
        return 3

    @cached_property
    def nodes(self) -> tuple[Coord, ...]:
        return grid_nodes(self._shape)

    @cached_property
    def links(self) -> tuple[Link, ...]:
        x, y, z = self._shape
        out: list[Link] = []
        for node in self.nodes:
            # full 2D mesh within each layer
            for dim, size in ((0, x), (1, y)):
                if node[dim] + 1 < size:
                    up = node[:dim] + (node[dim] + 1,) + node[dim + 1:]
                    out.append(Link(node, up, dim, +1))
                    out.append(Link(up, node, dim, -1))
            # vertical links only at elevators
            if (node[0], node[1]) in set(self._elevators) and node[2] + 1 < z:
                up = (node[0], node[1], node[2] + 1)
                out.append(Link(node, up, 2, +1))
                out.append(Link(up, node, 2, -1))
        return tuple(out)

    def nearest_elevator(self, node: Coord) -> tuple[int, int]:
        """The elevator minimising in-layer Manhattan distance from ``node``."""
        return min(
            self._elevators,
            key=lambda e: abs(e[0] - node[0]) + abs(e[1] - node[1]),
        )

    def _via_elevator(self, cur: Coord, elevator: tuple[int, int], dst: Coord) -> int:
        """Quasi-minimal hops from ``cur`` to ``dst`` through ``elevator``."""
        ex, ey = elevator
        return (
            abs(cur[0] - ex) + abs(cur[1] - ey)
            + abs(cur[2] - dst[2])
            + abs(ex - dst[0]) + abs(ey - dst[1])
        )

    def minimal_directions(self, cur: Coord, dst: Coord) -> tuple[tuple[int, int], ...]:
        """Productive directions under elevator-aware (quasi-minimal) routing.

        Within a layer this is plain mesh minimality.  When a layer change
        is needed, a move is productive when it shortens the route through
        *some* elevator — not only the nearest one.  Turn-restricted designs
        (such as the §6.3 partitioning, whose ``Z+`` lives in the first
        partition) often must route through a farther elevator that is
        reachable with first-partition channels; the permissive oracle keeps
        those routes available while every offered move still strictly
        decreases a per-elevator potential, so no livelock is possible.
        """
        self.validate_node(cur)
        self.validate_node(dst)
        dirs: list[tuple[int, int]] = []
        if cur[2] != dst[2]:
            z_sign = +1 if dst[2] > cur[2] else -1
            if (cur[0], cur[1]) in set(self._elevators):
                dirs.append((2, z_sign))
            here = {e: self._via_elevator(cur, e, dst) for e in self._elevators}
            for dim in (0, 1):
                for sign in (+1, -1):
                    nxt = self._step(cur, dim, sign)
                    if nxt is None:
                        continue
                    if any(
                        self._via_elevator(nxt, e, dst) < here[e]
                        for e in self._elevators
                    ):
                        dirs.append((dim, sign))
        else:
            for dim in (0, 1):
                if dst[dim] > cur[dim]:
                    dirs.append((dim, +1))
                elif dst[dim] < cur[dim]:
                    dirs.append((dim, -1))
        return tuple(dirs)

    def distance(self, src: Coord, dst: Coord) -> int:
        """Hop count of the elevator-aware quasi-minimal route."""
        self.validate_node(src)
        self.validate_node(dst)
        if src[2] == dst[2]:
            return abs(src[0] - dst[0]) + abs(src[1] - dst[1])
        best = None
        for ex, ey in self._elevators:
            hops = (
                abs(src[0] - ex) + abs(src[1] - ey)
                + abs(src[2] - dst[2])
                + abs(ex - dst[0]) + abs(ey - dst[1])
            )
            best = hops if best is None else min(best, hops)
        assert best is not None
        return best
