"""Network topologies: mesh, torus, partially connected 3D, irregular."""

from repro.topology.base import Coord, Link, Topology, dim_sign, grid_nodes
from repro.topology.classes import (
    ClassRule,
    NAMED_RULES,
    column_parity,
    local_global,
    no_classes,
    parity_rule,
    row_parity,
    rule_for_design,
    up_down_signs,
)
from repro.topology.dragonfly import Dragonfly
from repro.topology.fattree import FatTree
from repro.topology.irregular import FaultyMesh, GraphTopology
from repro.topology.mesh import Mesh
from repro.topology.partial3d import PartiallyConnected3D
from repro.topology.torus import Torus
from repro.topology.wires import Wire, check_full_instantiation, wires_by_link, wires_for

__all__ = [
    "Coord",
    "Link",
    "Topology",
    "dim_sign",
    "grid_nodes",
    "ClassRule",
    "NAMED_RULES",
    "column_parity",
    "local_global",
    "no_classes",
    "parity_rule",
    "row_parity",
    "rule_for_design",
    "up_down_signs",
    "Dragonfly",
    "FatTree",
    "FaultyMesh",
    "GraphTopology",
    "Mesh",
    "PartiallyConnected3D",
    "Torus",
    "Wire",
    "check_full_instantiation",
    "wires_by_link",
    "wires_for",
]
