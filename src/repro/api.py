"""The stable top-level facade: ``repro.run_point``, ``repro.sweep``,
``repro.verify``.

Three calls cover the library's everyday surface:

* :func:`run_point` — simulate one point from a :class:`RunConfig`;
* :func:`sweep` — a rate sweep through the parallel engine, returning a
  :class:`~repro.sim.parallel.SweepReport` (results + wall time + cache
  hit/miss accounting);
* :func:`verify` — deadlock-freedom verdict for *whatever you have*: an
  EbDa design, an explicit turn set, a live routing function, a catalog
  name or raw arrow notation.

Everything here is a thin veneer over the specialised entry points
(:func:`repro.sim.runner.run_point`, :class:`repro.sim.parallel.SweepEngine`,
:func:`repro.cdg.verify_design` and friends), which all remain public.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.core.sequence import PartitionSequence
from repro.core.turns import TurnSet
from repro.errors import EbdaError
from repro.routing.base import RoutingFunction
from repro.sim.parallel import SweepEngine, SweepReport
from repro.sim.runner import RunConfig, RunResult
from repro.sim.runner import run_point as _run_point
from repro.topology.base import Topology
from repro.topology.classes import ClassRule, no_classes

if TYPE_CHECKING:
    from pathlib import Path

    from repro.cdg.verify import Verdict
    from repro.sim.parallel import ResultCache

__all__ = ["run_point", "sweep", "verify"]


def run_point(
    topology: Topology,
    routing: "RoutingFunction | str | object",
    config: RunConfig | None = None,
    *,
    rule: ClassRule = no_classes,
    cache: "bool | str | Path | ResultCache" = False,
    metrics: "object | bool | None" = None,
    backend: str | None = None,
) -> RunResult:
    """Simulate one point.

    ``routing`` may be a live :class:`RoutingFunction`, a factory, or a
    named spec (``"xy"``, a catalog design name, arrow notation).  With
    ``cache`` enabled the point is served from / stored into the result
    cache.  ``metrics=True`` (or a ready
    :class:`~repro.sim.metrics.MetricsCollector`) attaches telemetry: the
    finalized collector lands on ``result.metrics`` — and the point is
    uncacheable, since a cache hit cannot replay samples.
    ``backend=`` overrides the config's simulation engine
    (``"reference"`` or ``"vector"``; see :func:`repro.backends`).

    >>> from repro import run_point, RunConfig
    >>> from repro.topology import Mesh
    >>> run_point(Mesh(4, 4), "xy", RunConfig(cycles=200)).deadlocked
    False
    """
    import time
    from dataclasses import replace

    config = config if config is not None else RunConfig()
    if metrics is not None:
        config = replace(config, metrics=metrics)
    if backend is not None:
        config = replace(config, backend=backend)
    started = time.perf_counter()
    if cache:
        engine = SweepEngine(jobs=1, cache=cache)
        result = engine.run_point(topology, routing, config, rule).result
    else:
        result = _run_point(topology, routing, config, rule)
    _ledger_point(
        topology, routing, config, rule, result, time.perf_counter() - started
    )
    return result


def _ledger_point(topology, routing, config, rule, result, wall_s) -> None:
    """Append a ``run_point`` ledger record when a ledger is configured.

    Identity is the version-free :func:`~repro.sim.parallel.point_token`
    (falling back to the routing name for unhashable specs); the outcome
    digest covers the full deterministic stats dict, so drift in *any*
    counter is visible to ``repro runs diff``.
    """
    from repro.obs.ledger import current_ledger, record_run

    if current_ledger() is None:
        return
    from repro.sim.parallel import point_token

    spec = point_token(topology, routing, config, rule)
    if spec is None:
        spec = f"unhashable:{result.routing_name}"
    record_run(
        "run_point",
        spec=spec,
        backend=config.backend,
        seed=config.seed,
        outcome="deadlock" if result.deadlocked else "ok",
        payload=result.stats.to_dict(),
        wall_s=wall_s,
    )


def sweep(
    topology: Topology,
    routing_factory: "object | str",
    rates: Sequence[float],
    config: RunConfig | None = None,
    *,
    rule: ClassRule = no_classes,
    jobs: int = 1,
    cache: "bool | str | Path | ResultCache" = False,
    engine: SweepEngine | None = None,
    backend: str | None = None,
) -> SweepReport:
    """Latency/throughput sweep over injection rates.

    Fans points out over ``jobs`` worker processes (named specs keep the
    work picklable; raw callables degrade to the deterministic in-process
    path) and consults the result cache when ``cache`` is enabled.
    ``backend=`` overrides the config's simulation engine for every
    point (``"reference"`` or ``"vector"``; see :func:`repro.backends`).
    Returns a :class:`~repro.sim.parallel.SweepReport`; the bare result
    list is its ``.results``.
    """
    if engine is None:
        engine = SweepEngine(jobs=jobs, cache=cache)
    config = config if config is not None else RunConfig()
    if backend is not None:
        from dataclasses import replace

        config = replace(config, backend=backend)
    return engine.sweep(topology, routing_factory, rates, config, rule)


def verify(
    subject: "PartitionSequence | TurnSet | RoutingFunction | str",
    topology: Topology,
    rule: ClassRule | None = None,
) -> "Verdict":
    """Deadlock-freedom verdict for a design, turn set or routing function.

    Dispatches on the subject's type to :func:`~repro.cdg.verify_design`,
    :func:`~repro.cdg.verify_turnset` or
    :func:`~repro.cdg.verify_routing`.  A string subject is resolved as a
    catalog design name (which also implies its class rule, unless
    ``rule`` overrides it) or arrow notation.

    >>> from repro import verify
    >>> from repro.topology import Mesh
    >>> verify("west-first", Mesh(4, 4)).acyclic
    True
    """
    from repro.cdg.verify import verify_design, verify_routing, verify_turnset

    if isinstance(subject, str):
        from repro.core import catalog
        from repro.topology.classes import rule_for_design

        if subject in catalog.NAMED_DESIGNS:
            design = catalog.design(subject)
            if rule is None:
                rule = rule_for_design(subject)
        else:
            design = PartitionSequence.parse(subject).validate()
        return verify_design(design, topology, rule if rule is not None else no_classes)
    rule = rule if rule is not None else no_classes
    if isinstance(subject, PartitionSequence):
        return verify_design(subject, topology, rule)
    if isinstance(subject, TurnSet):
        return verify_turnset(subject, topology, rule)
    if isinstance(subject, RoutingFunction):
        return verify_routing(subject, topology, rule)
    raise EbdaError(
        f"cannot verify a {type(subject).__name__}: expected a"
        " PartitionSequence, TurnSet, RoutingFunction or design name"
    )
