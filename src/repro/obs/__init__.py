"""Unified observability runtime: spans, run ledger, metrics, heartbeats.

Four pillars, one package, all observational (nothing here ever feeds
back into cache keys, seeds or simulation results):

* :mod:`repro.obs.trace` — nested span tracing with strict-JSONL export,
  a process-wide current tracer, and a zero-cost disabled default;
* :mod:`repro.obs.ledger` — an append-only, content-addressed run
  ledger recording every pipeline invocation's identity and outcome
  digest (``repro runs list/show/diff`` queries it; diff detects result
  drift across library versions);
* :mod:`repro.obs.metrics` — process-wide counters/gauges/histograms
  with Prometheus text exposition and strict-JSONL snapshots;
* :mod:`repro.obs.heartbeat` — atomic per-campaign heartbeat files and
  the ``repro top`` live-progress renderer.

See ``docs/OBSERVABILITY.md`` for the guide.
"""

from repro.obs.heartbeat import (
    HEARTBEAT_SCHEMA,
    HeartbeatWriter,
    default_heartbeat_dir,
    load_heartbeat,
    read_heartbeats,
    render_top,
)
from repro.obs.ledger import (
    LEDGER_SCHEMA,
    RunLedger,
    RunRecord,
    current_ledger,
    default_ledger_dir,
    outcome_digest,
    record_run,
    set_ledger,
)
from repro.obs.metrics import (
    METRICS_SCHEMA,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    NULL_TRACER,
    SPAN_SCHEMA,
    NullTracer,
    Span,
    Tracer,
    check_balance,
    current_tracer,
    load_trace,
    set_tracer,
    tracing,
)

__all__ = [
    "HEARTBEAT_SCHEMA",
    "LEDGER_SCHEMA",
    "METRICS_SCHEMA",
    "NULL_TRACER",
    "REGISTRY",
    "SPAN_SCHEMA",
    "Counter",
    "Gauge",
    "HeartbeatWriter",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "RunLedger",
    "RunRecord",
    "Span",
    "Tracer",
    "check_balance",
    "current_ledger",
    "current_tracer",
    "default_heartbeat_dir",
    "default_ledger_dir",
    "load_heartbeat",
    "load_trace",
    "outcome_digest",
    "read_heartbeats",
    "record_run",
    "render_top",
    "set_ledger",
    "set_tracer",
    "tracing",
]
