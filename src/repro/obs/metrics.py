"""Process-wide metrics: counters, gauges and histograms with exporters.

A :class:`MetricsRegistry` is a flat, get-or-create map from
``(name, labels)`` to one of three instrument kinds:

* :class:`Counter` — monotonically increasing (``repro_cache_hits_total``);
* :class:`Gauge` — last-write-wins level (``repro_campaign_progress``);
* :class:`Histogram` — cumulative-bucket distribution
  (``repro_simulate_seconds{backend="vector"}``).

The module-level :data:`REGISTRY` is what the instrumented subsystems
(:class:`~repro.sim.parallel.SweepEngine`,
:func:`~repro.fuzz.runner.run_fuzz`,
:class:`~repro.chaos.campaign.ChaosCampaign`,
:class:`~repro.analyze.engine.Analyzer`) write into; it exports two
ways:

* :meth:`MetricsRegistry.to_prometheus` — the Prometheus text exposition
  format (``# TYPE`` headers, label sets, ``_bucket``/``_sum``/``_count``
  histogram series), ready to serve from a ``/metrics`` endpoint;
* :meth:`MetricsRegistry.snapshot` / :meth:`MetricsRegistry.to_jsonl` —
  a strict-JSON snapshot per instrument, for machine-readable trend
  tracking alongside the benchmark ``BENCH_*.json`` files.

Instruments are cheap (a dict hit + float add) and the registry is
import-light, so the hot paths pay one attribute lookup when metrics go
unread.  Like tracing, metrics are observational only: nothing here
feeds back into cache keys or simulation results.
"""

from __future__ import annotations

import json
import threading
import time
from bisect import bisect_right
from pathlib import Path
from typing import Iterable, Mapping

from repro.errors import EbdaError

__all__ = [
    "METRICS_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
]

#: Bump when the snapshot record schema changes shape.
METRICS_SCHEMA = 1

#: Default histogram buckets: wall-clock seconds from 1 ms to ~2 min.
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 120.0)

_NAME_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _check_name(name: str) -> str:
    if not name or not set(name) <= _NAME_OK or name[0].isdigit():
        raise EbdaError(
            f"bad metric name {name!r}: use [a-zA-Z_:][a-zA-Z0-9_:]*"
        )
    return name


def _label_key(labels: Mapping[str, str] | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _label_suffix(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "labels", "help", "value")

    def __init__(self, name: str, labels: tuple, help: str = "") -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise EbdaError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount

    def snapshot_value(self) -> dict:
        return {"value": self.value}


class Gauge:
    """A level that can go up and down; last write wins."""

    kind = "gauge"
    __slots__ = ("name", "labels", "help", "value")

    def __init__(self, name: str, labels: tuple, help: str = "") -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot_value(self) -> dict:
        return {"value": self.value}


class Histogram:
    """A cumulative-bucket distribution (Prometheus histogram semantics)."""

    kind = "histogram"
    __slots__ = ("name", "labels", "help", "buckets", "counts", "count", "sum")

    def __init__(
        self,
        name: str,
        labels: tuple,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise EbdaError(f"histogram {name} needs at least one bucket")
        self.counts = [0] * len(self.buckets)  # per-bucket (non-cumulative)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        idx = bisect_right(self.buckets, value)
        if idx < len(self.counts):
            self.counts[idx] += 1
        # values above the last bucket only appear in +Inf (count).

    def cumulative(self) -> list[tuple[float, int]]:
        """``(le, cumulative count)`` pairs, excluding the +Inf bucket."""
        out = []
        running = 0
        for le, n in zip(self.buckets, self.counts):
            running += n
            out.append((le, running))
        return out

    def snapshot_value(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "buckets": [
                {"le": le, "count": n} for le, n in self.cumulative()
            ],
        }


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class MetricsRegistry:
    """Get-or-create registry of instruments, with exporters.

    Thread-safe for instrument *creation*; individual updates are plain
    float ops (the GIL-atomic kind the rest of the library relies on).
    """

    def __init__(self) -> None:
        self._instruments: dict[tuple, "Counter | Gauge | Histogram"] = {}
        self._lock = threading.Lock()

    def _get(self, cls, name: str, labels, help: str, **kwargs):
        key = (_check_name(name), _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(key)
                if instrument is None:
                    instrument = cls(name, key[1], help=help, **kwargs)
                    self._instruments[key] = instrument
        if not isinstance(instrument, cls):
            raise EbdaError(
                f"metric {name!r} already registered as a"
                f" {instrument.kind}, not a {cls.kind}"
            )
        return instrument

    def counter(
        self, name: str, labels: Mapping[str, str] | None = None, help: str = ""
    ) -> Counter:
        return self._get(Counter, name, labels, help)

    def gauge(
        self, name: str, labels: Mapping[str, str] | None = None, help: str = ""
    ) -> Gauge:
        return self._get(Gauge, name, labels, help)

    def histogram(
        self,
        name: str,
        labels: Mapping[str, str] | None = None,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get(Histogram, name, labels, help, buckets=buckets)

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self):
        return iter(sorted(self._instruments.values(), key=lambda i: (i.name, i.labels)))

    def reset(self) -> None:
        """Drop every instrument (tests and fresh campaign runs)."""
        with self._lock:
            self._instruments.clear()

    # -- exporters -------------------------------------------------------------

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        seen_headers: set[str] = set()
        for instrument in self:
            if instrument.name not in seen_headers:
                seen_headers.add(instrument.name)
                if instrument.help:
                    lines.append(f"# HELP {instrument.name} {instrument.help}")
                lines.append(f"# TYPE {instrument.name} {instrument.kind}")
            suffix = _label_suffix(instrument.labels)
            if isinstance(instrument, Histogram):
                for le, running in instrument.cumulative():
                    le_labels = instrument.labels + (("le", _format_value(le)),)
                    lines.append(
                        f"{instrument.name}_bucket{_label_suffix(le_labels)}"
                        f" {running}"
                    )
                inf_labels = instrument.labels + (("le", "+Inf"),)
                lines.append(
                    f"{instrument.name}_bucket{_label_suffix(inf_labels)}"
                    f" {instrument.count}"
                )
                lines.append(
                    f"{instrument.name}_sum{suffix} {_format_value(instrument.sum)}"
                )
                lines.append(f"{instrument.name}_count{suffix} {instrument.count}")
            else:
                lines.append(
                    f"{instrument.name}{suffix} {_format_value(instrument.value)}"
                )
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> list[dict]:
        """One strict-JSON record per instrument, sorted by (name, labels)."""
        out = []
        for instrument in self:
            out.append(
                {
                    "schema": METRICS_SCHEMA,
                    "record": "metric",
                    "name": instrument.name,
                    "kind": instrument.kind,
                    "labels": dict(instrument.labels),
                    **instrument.snapshot_value(),
                }
            )
        return out

    def to_jsonl(self, path: "str | Path") -> int:
        """Write the snapshot as strict JSON Lines; returns the line count.

        The first line is a ``metrics-meta`` record with the schema and a
        capture timestamp; instrument lines follow.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        records = self.snapshot()
        with path.open("w") as fh:
            fh.write(
                json.dumps(
                    {
                        "schema": METRICS_SCHEMA,
                        "record": "metrics-meta",
                        "instruments": len(records),
                        "captured_at": time.time(),
                    },
                    allow_nan=False,
                )
                + "\n"
            )
            for record in records:
                fh.write(json.dumps(record, allow_nan=False) + "\n")
        return len(records) + 1


#: The process-wide default registry the instrumented subsystems write to.
REGISTRY = MetricsRegistry()
