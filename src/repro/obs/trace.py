"""Span tracing: nested, attributed wall-clock spans over every pipeline.

A :class:`Tracer` records *spans* — named, attributed intervals opened
with the :meth:`Tracer.span` context manager — as a flat strict-JSONL
event stream (one ``span-start`` and one ``span-end`` event per span,
linked by a per-tracer span id and a ``parent`` id for nesting).  The
instrumented subsystems (:class:`~repro.sim.parallel.SweepEngine` stages,
:func:`~repro.fuzz.runner.run_fuzz` batches,
:class:`~repro.chaos.campaign.ChaosCampaign` batches,
:class:`~repro.analyze.engine.Analyzer` lint passes) all trace through
the process-wide *current tracer*, which defaults to the
:data:`NULL_TRACER` — a no-op whose ``span()`` hands back one shared,
reusable context manager, so tracing costs two function calls per span
when disabled and nothing per cycle, ever.

Determinism contract: tracing never feeds back into results.  Span
attributes are observational only — they are not hashed into
:func:`~repro.sim.parallel.cache_key`, never reach
:class:`~repro.sim.stats.SimStats`, and enabling a tracer changes no
simulation outcome (guarded by ``tests/obs/test_determinism.py``).

Worker processes do not inherit the parent's tracer: spans are recorded
at orchestration granularity (stages, batches), so a parallel run traces
the same shape as a serial one.

Usage::

    from repro.obs import Tracer, tracing

    tracer = Tracer()
    with tracing(tracer):
        ...  # instrumented code records spans
    tracer.to_jsonl("spans.jsonl")
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.errors import EbdaError

__all__ = [
    "NULL_TRACER",
    "SPAN_SCHEMA",
    "NullTracer",
    "Span",
    "Tracer",
    "check_balance",
    "current_tracer",
    "load_trace",
    "set_tracer",
    "tracing",
]

#: Bump when the span event schema changes shape.
SPAN_SCHEMA = 1

#: Event names a trace file may contain.
_EVENTS = ("span-start", "span-end")


def _check_attrs(attrs: dict) -> dict:
    """Validate span attributes are strict-JSON-safe plain data."""
    try:
        json.dumps(attrs, allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise EbdaError(f"span attributes must be strict-JSON-safe: {exc}") from None
    return attrs


class Span:
    """One live span: a context manager that records start/end events.

    Attributes set at open time travel on the ``span-start`` event;
    :meth:`set` adds end-time attributes (outcome counts, hit rates) that
    travel on the ``span-end`` event.
    """

    __slots__ = ("_tracer", "id", "name", "parent", "start", "_end_attrs")

    def __init__(self, tracer: "Tracer", id: int, name: str, parent: int | None) -> None:
        self._tracer = tracer
        self.id = id
        self.name = name
        self.parent = parent
        self.start = 0.0
        self._end_attrs: dict[str, Any] = {}

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the eventual ``span-end`` event."""
        self._end_attrs.update(_check_attrs(attrs))
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None and "error" not in self._end_attrs:
            self._end_attrs["error"] = exc_type.__name__
        self._tracer._close(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span(id={self.id}, name={self.name!r}, parent={self.parent})"


class Tracer:
    """Records nested spans as an in-memory strict-JSON event list.

    Parameters
    ----------
    clock:
        Monotonic seconds source (``time.perf_counter`` by default);
        injectable for deterministic tests.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._next_id = 0
        self._stack: list[Span] = []
        self.events: list[dict[str, Any]] = []

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a span; use as a context manager.

        ``attrs`` must be strict-JSON-safe plain data; they are recorded
        on the ``span-start`` event.
        """
        span = Span(
            self,
            id=self._next_id,
            name=name,
            parent=self._stack[-1].id if self._stack else None,
        )
        self._next_id += 1
        span.start = self._clock()
        self.events.append(
            {
                "event": "span-start",
                "schema": SPAN_SCHEMA,
                "span": span.id,
                "parent": span.parent,
                "name": name,
                "t": span.start,
                "attrs": _check_attrs(attrs),
            }
        )
        self._stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        end = self._clock()
        # End any dangling children first so the stream stays balanced
        # even if a span object leaks past its parent's __exit__.
        while self._stack and self._stack[-1] is not span:
            leaked = self._stack.pop()
            leaked.set(leaked=True)
            self._emit_end(leaked, end)
        if self._stack:
            self._stack.pop()
        self._emit_end(span, end)

    def _emit_end(self, span: Span, end: float) -> None:
        self.events.append(
            {
                "event": "span-end",
                "schema": SPAN_SCHEMA,
                "span": span.id,
                "name": span.name,
                "t": end,
                "elapsed_s": end - span.start,
                "attrs": dict(span._end_attrs),
            }
        )

    def __len__(self) -> int:
        return len(self.events)

    def to_jsonl(self, path: "str | Path") -> int:
        """Write every event as strict JSON Lines; returns the line count."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as fh:
            for event in self.events:
                fh.write(json.dumps(event, allow_nan=False) + "\n")
        return len(self.events)


class _NullSpan:
    """The shared no-op span: enters, exits, and swallows attributes."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every ``span()`` is the same reusable no-op."""

    enabled = False
    events: tuple = ()

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def to_jsonl(self, path: "str | Path") -> int:
        raise EbdaError("the null tracer records nothing; install a Tracer first")

    def __len__(self) -> int:
        return 0


#: The process-wide default: tracing disabled, zero allocation per span.
NULL_TRACER = NullTracer()

_current: "Tracer | NullTracer" = NULL_TRACER


def current_tracer() -> "Tracer | NullTracer":
    """The tracer instrumented code records into (default: disabled)."""
    return _current


def set_tracer(tracer: "Tracer | NullTracer | None") -> "Tracer | NullTracer":
    """Install the process-wide tracer; returns the previous one.

    ``None`` restores the disabled default.
    """
    global _current
    previous = _current
    _current = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def tracing(tracer: "Tracer | NullTracer") -> Iterator["Tracer | NullTracer"]:
    """Scope ``tracer`` as the current tracer, restoring on exit."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def load_trace(path: "str | Path") -> list[dict[str, Any]]:
    """Load and validate a span JSONL file; raises :class:`EbdaError` on
    any malformed line (wrong schema, unknown event, missing field)."""
    events = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise EbdaError(f"{path}:{lineno}: not valid JSON: {exc}") from None
        if not isinstance(event, dict):
            raise EbdaError(f"{path}:{lineno}: event must be a JSON object")
        if event.get("schema") != SPAN_SCHEMA:
            raise EbdaError(
                f"{path}:{lineno}: unsupported span schema"
                f" {event.get('schema')!r} (expected {SPAN_SCHEMA})"
            )
        kind = event.get("event")
        if kind not in _EVENTS:
            raise EbdaError(f"{path}:{lineno}: unknown event kind {kind!r}")
        required = (
            ("span", "parent", "name", "t", "attrs")
            if kind == "span-start"
            else ("span", "name", "t", "elapsed_s", "attrs")
        )
        missing = [key for key in required if key not in event]
        if missing:
            raise EbdaError(
                f"{path}:{lineno}: {kind} missing field(s): {', '.join(missing)}"
            )
        if not isinstance(event["attrs"], dict):
            raise EbdaError(f"{path}:{lineno}: attrs must be a JSON object")
        events.append(event)
    return events


def check_balance(events: list[dict[str, Any]]) -> None:
    """Assert the event stream is *balanced*: every ``span-start`` has
    exactly one later ``span-end``, ids are unique, parents are open at
    their children's start.  Raises :class:`EbdaError` on violation."""
    open_spans: dict[int, dict] = {}
    closed: set[int] = set()
    for event in events:
        sid = event["span"]
        if event["event"] == "span-start":
            if sid in open_spans or sid in closed:
                raise EbdaError(f"span {sid} started twice")
            parent = event["parent"]
            if parent is not None and parent not in open_spans:
                raise EbdaError(
                    f"span {sid} ({event['name']!r}) started under parent"
                    f" {parent}, which is not open"
                )
            open_spans[sid] = event
        else:
            if sid not in open_spans:
                raise EbdaError(f"span {sid} ended without a matching start")
            start = open_spans.pop(sid)
            if start["name"] != event["name"]:
                raise EbdaError(
                    f"span {sid} started as {start['name']!r} but ended as"
                    f" {event['name']!r}"
                )
            if event["t"] < start["t"]:
                raise EbdaError(f"span {sid} ends before it starts")
            closed.add(sid)
    if open_spans:
        names = ", ".join(repr(e["name"]) for e in open_spans.values())
        raise EbdaError(f"{len(open_spans)} span(s) never ended: {names}")
