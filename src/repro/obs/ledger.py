"""The run ledger: append-only, content-addressed provenance for every run.

Each ``run_point`` / ``sweep`` / ``fuzz`` / ``chaos`` / ``lint`` /
``certify`` invocation can append one :class:`RunRecord` to an on-disk
:class:`RunLedger` — a single append-only JSON Lines file.  A record
splits into two halves:

* **identity** — what was run: the record kind, the spec token (design /
  routing / campaign token), backend, seed, and the library + Python
  versions.  :attr:`RunRecord.run_id` is a content digest over exactly
  these fields, so the *same run* always lands under the *same id*;
* **outcome** — what happened: a one-word outcome, a digest of the full
  result payload, and the wall time.

That split is what makes drift detectable: two records with the same
identity *minus version* but different outcome digests mean an upgrade
changed a result — :meth:`RunLedger.drift` (surfaced as ``repro runs
diff``) finds exactly those pairs.  Conversely rerunning the same version
must reproduce the same digest, which ``tools/ci_obs_check.py`` gates.

The ledger is **off by default**.  It activates when the
``REPRO_EBDA_LEDGER_DIR`` environment variable names a directory or when
:func:`set_ledger` installs one explicitly (the CLI's ``--ledger`` flag
does this); :func:`record_run` is a no-op otherwise, so library users
who never opt in never touch the filesystem.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Iterable

from repro.errors import EbdaError

__all__ = [
    "LEDGER_SCHEMA",
    "RunLedger",
    "RunRecord",
    "current_ledger",
    "default_ledger_dir",
    "outcome_digest",
    "record_run",
    "set_ledger",
    "versions",
]

#: Bump when the ledger record schema changes shape.
LEDGER_SCHEMA = 1

#: Record kinds the ledger accepts (one per pipeline entry point).
RUN_KINDS = ("run_point", "sweep", "fuzz", "chaos", "lint", "certify")


def default_ledger_dir() -> Path:
    """``$REPRO_EBDA_LEDGER_DIR``, else ``<cache-dir>/ledger``."""
    env = os.environ.get("REPRO_EBDA_LEDGER_DIR")
    if env:
        return Path(env)
    from repro.sim.parallel import default_cache_dir

    return default_cache_dir() / "ledger"


def versions() -> dict[str, str]:
    """The version stamp every record carries."""
    import repro

    return {"repro": repro.__version__, "python": platform.python_version()}


def outcome_digest(payload: Any) -> str:
    """16-hex content digest of a strict-JSON-safe outcome payload."""
    try:
        material = json.dumps(
            payload, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except (TypeError, ValueError) as exc:
        raise EbdaError(f"outcome payload must be strict-JSON-safe: {exc}") from None
    return hashlib.sha256(material.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class RunRecord:
    """One ledger line: a run's identity plus its outcome."""

    kind: str
    #: The run's subject: a spec token, campaign token, or design list.
    spec: str
    backend: str = "reference"
    seed: int = 0
    #: One-word outcome: ``ok``, ``deadlock``, ``disagreement``, ...
    outcome: str = "ok"
    #: 16-hex digest of the full result payload (:func:`outcome_digest`).
    digest: str = ""
    wall_s: float = 0.0
    versions: dict = field(default_factory=versions)
    #: Unix seconds at append time (not part of the identity).
    created_at: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in RUN_KINDS:
            raise EbdaError(
                f"unknown run kind {self.kind!r}; known kinds:"
                f" {', '.join(RUN_KINDS)}"
            )

    @property
    def run_id(self) -> str:
        """16-hex digest of the identity half (kind/spec/backend/seed/versions)."""
        material = json.dumps(
            {
                "schema": LEDGER_SCHEMA,
                "kind": self.kind,
                "spec": self.spec,
                "backend": self.backend,
                "seed": self.seed,
                "versions": self.versions,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(material.encode()).hexdigest()[:16]

    @property
    def identity(self) -> tuple:
        """What the run *was*, version-independent (the drift group key)."""
        return (self.kind, self.spec, self.backend, self.seed)

    def to_dict(self) -> dict:
        return {
            "schema": LEDGER_SCHEMA,
            "record": "run",
            "run_id": self.run_id,
            "kind": self.kind,
            "spec": self.spec,
            "backend": self.backend,
            "seed": self.seed,
            "outcome": self.outcome,
            "digest": self.digest,
            "wall_s": self.wall_s,
            "versions": dict(self.versions),
            "created_at": self.created_at,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        if data.get("schema") != LEDGER_SCHEMA:
            raise EbdaError(
                f"unsupported ledger schema {data.get('schema')!r}"
                f" (expected {LEDGER_SCHEMA})"
            )
        if data.get("record") != "run":
            raise EbdaError(f"not a run record: {data.get('record')!r}")
        known = {f.name for f in fields(cls)}
        payload = {k: v for k, v in data.items() if k in known}
        missing = known - set(payload)
        if missing:
            raise EbdaError(
                f"run record missing field(s): {', '.join(sorted(missing))}"
            )
        record = cls(**payload)
        stored = data.get("run_id")
        if stored is not None and stored != record.run_id:
            raise EbdaError(
                f"run record id mismatch: stored {stored}, computed"
                f" {record.run_id} (ledger line edited?)"
            )
        return record


class RunLedger:
    """An append-only JSONL file of :class:`RunRecord` lines.

    Appends are single ``write()`` calls of one line opened in append
    mode, so concurrent writers interleave whole records, never bytes.
    """

    def __init__(self, directory: "str | Path | None" = None) -> None:
        self.directory = Path(directory) if directory else default_ledger_dir()
        self.path = self.directory / "ledger.jsonl"

    def append(self, record: RunRecord) -> RunRecord:
        """Append one record (stamping ``created_at`` if unset)."""
        if not record.created_at:
            object.__setattr__(record, "created_at", time.time())
        self.directory.mkdir(parents=True, exist_ok=True)
        line = json.dumps(
            record.to_dict(), sort_keys=True, separators=(",", ":"), allow_nan=False
        )
        with self.path.open("a") as fh:
            fh.write(line + "\n")
        return record

    def records(self) -> list[RunRecord]:
        """Every record, in append order; corrupt lines raise."""
        if not self.path.is_file():
            return []
        out = []
        for lineno, line in enumerate(self.path.read_text().splitlines(), start=1):
            if not line.strip():
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise EbdaError(f"{self.path}:{lineno}: not valid JSON: {exc}") from None
            out.append(RunRecord.from_dict(data))
        return out

    def __len__(self) -> int:
        return len(self.records())

    def find(self, prefix: str) -> list[RunRecord]:
        """Records whose ``run_id`` starts with ``prefix`` (append order)."""
        return [r for r in self.records() if r.run_id.startswith(prefix)]

    def drift(self) -> list[dict]:
        """Identity groups whose outcome digest changed between versions.

        Returns one row per drifting identity:
        ``{"kind", "spec", "backend", "seed", "variants": [{versions,
        digest, outcome, run_id}, ...]}`` — ``variants`` holds one entry
        per distinct (versions, digest) pair, in first-seen order.
        Same-version digest flips are included too: those are
        *nondeterminism*, which is worse than drift.
        """
        groups: dict[tuple, list[RunRecord]] = {}
        for record in self.records():
            groups.setdefault(record.identity, []).append(record)
        rows = []
        for identity, members in groups.items():
            digests = {m.digest for m in members}
            if len(digests) <= 1:
                continue
            variants: list[dict] = []
            seen: set[tuple] = set()
            for m in members:
                key = (json.dumps(m.versions, sort_keys=True), m.digest)
                if key in seen:
                    continue
                seen.add(key)
                variants.append(
                    {
                        "versions": dict(m.versions),
                        "digest": m.digest,
                        "outcome": m.outcome,
                        "run_id": m.run_id,
                    }
                )
            kind, spec, backend, seed = identity
            rows.append(
                {
                    "kind": kind,
                    "spec": spec,
                    "backend": backend,
                    "seed": seed,
                    "variants": variants,
                }
            )
        return rows


_current: RunLedger | None = None
_env_checked = False


def current_ledger() -> RunLedger | None:
    """The installed ledger, else one from ``$REPRO_EBDA_LEDGER_DIR``, else None.

    The environment variable is consulted on every call (not cached), so
    tests and CI can point different phases at different ledgers.
    """
    if _current is not None:
        return _current
    env = os.environ.get("REPRO_EBDA_LEDGER_DIR")
    if env:
        return RunLedger(env)
    return None


def set_ledger(ledger: "RunLedger | str | Path | None") -> RunLedger | None:
    """Install the process-wide ledger (a path builds one); returns the
    previous explicitly-installed ledger.  ``None`` uninstalls."""
    global _current
    previous = _current
    if ledger is None or isinstance(ledger, RunLedger):
        _current = ledger
    else:
        _current = RunLedger(ledger)
    return previous


def record_run(
    kind: str,
    spec: str,
    *,
    backend: str = "reference",
    seed: int = 0,
    outcome: str = "ok",
    payload: Any = None,
    wall_s: float = 0.0,
) -> RunRecord | None:
    """Append a run to the current ledger; no-op (returns None) when no
    ledger is configured.  ``payload`` is digested, not stored."""
    ledger = current_ledger()
    if ledger is None:
        return None
    record = RunRecord(
        kind=kind,
        spec=spec,
        backend=backend,
        seed=seed,
        outcome=outcome,
        digest=outcome_digest(payload) if payload is not None else "",
        wall_s=wall_s,
    )
    return ledger.append(record)
