"""Live campaign progress: atomic heartbeat files and the ``repro top`` view.

Long-running campaigns (chaos sweeps, fuzzing runs, big rate sweeps)
write one *heartbeat file* each — a single strict-JSON object rewritten
atomically (tmp + rename, mirroring
:class:`~repro.sim.parallel.ResultCache`) after every batch.  A reader
can therefore never observe a torn heartbeat, and a crashed campaign
leaves its last beat behind with a growing staleness age instead of a
corrupt file.

``repro top`` tails a heartbeat directory (default
``<cache-dir>/heartbeats``) and renders every campaign's progress bar,
rate, ETA and staleness — the live-fleet view the ROADMAP's distributed
campaign direction needs.

Heartbeats carry wall-clock state by design (ETA is the whole point);
they live next to, not inside, the deterministic artifacts — trial
records, ledgers and reports never embed heartbeat data.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Iterator

from repro.errors import EbdaError

__all__ = [
    "HEARTBEAT_SCHEMA",
    "HeartbeatWriter",
    "default_heartbeat_dir",
    "load_heartbeat",
    "read_heartbeats",
    "render_top",
]

#: Bump when the heartbeat record schema changes shape.
HEARTBEAT_SCHEMA = 1

#: A heartbeat older than this (seconds) renders as stale in ``repro top``.
STALE_AFTER_S = 30.0


def default_heartbeat_dir() -> Path:
    """``$REPRO_EBDA_HEARTBEAT_DIR``, else ``<cache-dir>/heartbeats``."""
    env = os.environ.get("REPRO_EBDA_HEARTBEAT_DIR")
    if env:
        return Path(env)
    from repro.sim.parallel import default_cache_dir

    return default_cache_dir() / "heartbeats"


class HeartbeatWriter:
    """Writes one campaign's heartbeat file atomically on every beat.

    Parameters
    ----------
    id:
        Stable campaign identity (e.g. the chaos campaign token, or
        ``fuzz-<seed>``); names the file ``<id>.json``.
    kind:
        Campaign kind (``chaos``, ``fuzz``, ``sweep``).
    total:
        Total work units (trials, points); ``done`` counts toward it.
    directory:
        Defaults to :func:`default_heartbeat_dir`.
    clock:
        Injectable wall-clock (``time.time``) for deterministic tests.
    """

    def __init__(
        self,
        id: str,
        kind: str,
        total: int,
        directory: "str | Path | None" = None,
        clock=time.time,
    ) -> None:
        safe = "".join(c if c.isalnum() or c in "-_." else "-" for c in id)
        if not safe:
            raise EbdaError(f"heartbeat id {id!r} has no filename-safe characters")
        self.id = safe
        self.kind = kind
        self.total = total
        self.directory = Path(directory) if directory else default_heartbeat_dir()
        self.path = self.directory / f"{self.id}.json"
        self._clock = clock
        self._started = clock()
        self.beats = 0

    def beat(
        self, done: int, *, batch: int | None = None, state: str = "running", **extra: Any
    ) -> dict:
        """Rewrite the heartbeat file; returns the record written.

        ``extra`` fields (disagreements so far, outcome counts) must be
        strict-JSON-safe; they land at the top level of the record.
        """
        now = self._clock()
        elapsed = now - self._started
        eta: float | None = None
        if 0 < done < self.total and elapsed > 0:
            eta = elapsed / done * (self.total - done)
        elif done >= self.total:
            eta = 0.0
        record = {
            "schema": HEARTBEAT_SCHEMA,
            "record": "heartbeat",
            "id": self.id,
            "kind": self.kind,
            "state": state,
            "pid": os.getpid(),
            "done": done,
            "total": self.total,
            "batch": batch,
            "elapsed_s": elapsed,
            "eta_s": eta,
            "started_at": self._started,
            "updated_at": now,
            **extra,
        }
        try:
            json.dumps(record, allow_nan=False)
        except (TypeError, ValueError) as exc:
            raise EbdaError(f"heartbeat fields must be strict-JSON-safe: {exc}") from None
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(record, allow_nan=False, sort_keys=True))
        os.replace(tmp, self.path)
        self.beats += 1
        return record

    def finish(self, done: int, **extra: Any) -> dict:
        """Final beat: marks the campaign ``done``."""
        return self.beat(done, state="done", **extra)


_REQUIRED = (
    "id", "kind", "state", "done", "total", "elapsed_s", "eta_s", "updated_at",
)


def load_heartbeat(path: "str | Path") -> dict:
    """Load and validate one heartbeat file; raises :class:`EbdaError` on
    schema violations."""
    path = Path(path)
    try:
        record = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise EbdaError(f"cannot read heartbeat {path}: {exc}") from None
    if not isinstance(record, dict) or record.get("record") != "heartbeat":
        raise EbdaError(f"{path}: not a heartbeat record")
    if record.get("schema") != HEARTBEAT_SCHEMA:
        raise EbdaError(
            f"{path}: unsupported heartbeat schema {record.get('schema')!r}"
            f" (expected {HEARTBEAT_SCHEMA})"
        )
    missing = [key for key in _REQUIRED if key not in record]
    if missing:
        raise EbdaError(f"{path}: heartbeat missing field(s): {', '.join(missing)}")
    return record


def read_heartbeats(directory: "str | Path | None" = None) -> Iterator[dict]:
    """Every readable heartbeat in ``directory``, most recent first.

    Unreadable or torn files are skipped (a writer may be mid-rename);
    ``.tmp.*`` leftovers are ignored.
    """
    directory = Path(directory) if directory else default_heartbeat_dir()
    records = []
    if directory.is_dir():
        for path in directory.glob("*.json"):
            try:
                records.append(load_heartbeat(path))
            except EbdaError:
                continue
    records.sort(key=lambda r: r.get("updated_at", 0.0), reverse=True)
    return iter(records)


def _bar(done: int, total: int, width: int = 24) -> str:
    if total <= 0:
        return "?" * width
    filled = min(width, round(width * done / total))
    return "#" * filled + "." * (width - filled)


def _fmt_eta(eta: "float | None") -> str:
    if eta is None:
        return "  --"
    if eta >= 3600:
        return f"{eta / 3600:.1f}h"
    if eta >= 60:
        return f"{eta / 60:.1f}m"
    return f"{eta:.0f}s"


def render_top(
    records: "list[dict] | None" = None,
    *,
    directory: "str | Path | None" = None,
    now: "float | None" = None,
    stale_after_s: float = STALE_AFTER_S,
) -> str:
    """The ``repro top`` screen: one row per campaign heartbeat.

    ``records`` defaults to :func:`read_heartbeats`; pass explicitly for
    deterministic rendering in tests.
    """
    if records is None:
        records = list(read_heartbeats(directory))
    if not records:
        return "(no campaign heartbeats)"
    now = time.time() if now is None else now
    lines = [
        f"{'ID':20s} {'KIND':6s} {'PROGRESS':32s} {'RATE':>9s}"
        f" {'ELAPSED':>8s} {'ETA':>6s}  STATE"
    ]
    for r in records:
        done, total = r["done"], r["total"]
        elapsed = r["elapsed_s"]
        rate = f"{done / elapsed:.1f}/s" if elapsed >= 0.1 and done else "--"
        age = now - r["updated_at"]
        state = r["state"]
        if state == "running" and age > stale_after_s:
            state = f"stale {age:.0f}s"
        extra = {
            k: v
            for k, v in r.items()
            if k not in _REQUIRED
            and k not in ("schema", "record", "pid", "batch", "started_at")
        }
        suffix = (
            " " + " ".join(f"{k}={v}" for k, v in sorted(extra.items()))
            if extra
            else ""
        )
        lines.append(
            f"{r['id'][:20]:20s} {r['kind'][:6]:6s}"
            f" [{_bar(done, total)}] {done}/{total}"
            f" {rate:>9s} {elapsed:7.1f}s {_fmt_eta(r['eta_s']):>6s}"
            f"  {state}{suffix}"
        )
    return "\n".join(lines)
