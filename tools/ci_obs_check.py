"""CI guard for the observability runtime.

Exercises the full surface against real workloads and asserts the
contracts the runtime promises:

* a traced V2 sweep and a traced 20-trial fuzz campaign both export
  strict, schema-valid, **balanced** span JSONL with the expected
  root spans;
* an armed ledger records every invocation; rerunning the identical
  sweep appends (never rewrites) and reproduces the same outcome
  digest — ``repro runs diff`` reports zero drift;
* the metrics registry carries the subsystem counters and renders a
  Prometheus text exposition;
* heartbeat files round-trip through the ``repro top`` renderer.

The two span traces are written as artifacts (default
``obs-sweep-spans.jsonl`` / ``obs-fuzz-spans.jsonl``; the first two
arguments override).

Run from the repository root:
    PYTHONPATH=src python tools/ci_obs_check.py [sweep.jsonl] [fuzz.jsonl]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

FUZZ_TRIALS = 20


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def span_names(events: list[dict]) -> set[str]:
    return {e["name"] for e in events if e["event"] == "span-start"}


def check_trace(path: Path, required: set[str], label: str) -> None:
    from repro.errors import EbdaError
    from repro.obs import check_balance, load_trace

    try:
        events = load_trace(path)
        check_balance(events)
    except EbdaError as exc:
        fail(f"{label} trace invalid: {exc}")
    names = span_names(events)
    missing = required - names
    if missing:
        fail(f"{label} trace lacks span(s): {', '.join(sorted(missing))}")
    print(f"{label}: {len(events)} events, balanced,"
          f" {len(names)} distinct span names")


def main() -> None:
    from repro.cli import main as repro_main
    from repro.experiments import deadlock_demo
    from repro.obs import (
        REGISTRY,
        HeartbeatWriter,
        RunLedger,
        Tracer,
        render_top,
        set_ledger,
        tracing,
    )
    from repro.sim import ResultCache, SweepEngine
    from repro.fuzz import fast_profile, run_fuzz

    sweep_out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("obs-sweep-spans.jsonl")
    fuzz_out = Path(sys.argv[2]) if len(sys.argv) > 2 else Path("obs-fuzz-spans.jsonl")

    with tempfile.TemporaryDirectory(prefix="repro-ebda-ci-obs-") as tmp:
        ledger_dir = Path(tmp) / "ledger"
        previous = set_ledger(ledger_dir)
        try:
            # --- traced + ledgered V2 sweep ---------------------------------
            tracer = Tracer()
            with tracing(tracer):
                deadlock_demo.run(
                    engine=SweepEngine(cache=ResultCache(Path(tmp) / "cache"))
                )
            tracer.to_jsonl(sweep_out)
            check_trace(
                sweep_out,
                {"sweep.run_many", "sweep.cache_read", "sweep.simulate",
                 "sweep.cache_write"},
                "V2 sweep",
            )

            # --- traced fuzz campaign ---------------------------------------
            tracer = Tracer()
            with tracing(tracer):
                report = run_fuzz(FUZZ_TRIALS, seed=0, profile=fast_profile())
            if not report.ok:
                fail(f"fuzz campaign disagreed: {report.summary()}")
            if report.runs_completed != FUZZ_TRIALS:
                fail(f"fuzz completed {report.runs_completed}/{FUZZ_TRIALS} trials")
            tracer.to_jsonl(fuzz_out)
            check_trace(fuzz_out, {"fuzz.campaign", "fuzz.batch"}, "fuzz")

            # --- ledger: append-only rerun, identical digests, no drift -----
            # (deadlock_demo drives run_many over mixed specs; the ledger
            # records whole rate sweeps, so run one explicitly — twice.)
            from repro.sim import RunConfig
            from repro.topology import Mesh

            config = RunConfig(cycles=200, seed=1, watchdog=400)
            engine = SweepEngine(jobs=1, cache=None)
            engine.sweep(Mesh(4, 4), "xy", [0.05, 0.1], config)

            ledger = RunLedger(ledger_dir)
            first_kinds = [r.kind for r in ledger.records()]
            if "sweep" not in first_kinds or "fuzz" not in first_kinds:
                fail(f"ledger missing run kinds: recorded {first_kinds}")
            before = ledger.path.read_text()

            engine.sweep(Mesh(4, 4), "xy", [0.05, 0.1], config)
            after = ledger.path.read_text()
            if not after.startswith(before):
                fail("ledger rerun rewrote existing lines (not append-only)")

            records = ledger.records()
            sweeps = [r for r in records if r.kind == "sweep"]
            by_identity: dict[str, set[str]] = {}
            for r in sweeps:
                by_identity.setdefault(r.identity, set()).add(r.digest)
            repeated = [ds for ds in by_identity.values() if len(ds) > 1]
            if repeated:
                fail(f"sweep rerun changed outcome digest(s): {repeated}")
            drift = ledger.drift()
            if drift:
                fail(f"ledger reports drift on identical reruns: {drift}")
            print(f"ledger: {len(records)} records, append-only,"
                  f" rerun digests identical, no drift")

            if repro_main(["runs", "list", "--ledger", str(ledger_dir)]) != 0:
                fail("`repro runs list` failed")
            if repro_main(["runs", "diff", "--ledger", str(ledger_dir)]) != 0:
                fail("`repro runs diff` reported drift")
        finally:
            set_ledger(previous)

        # --- metrics registry ------------------------------------------------
        exposition = REGISTRY.to_prometheus()
        for metric in ("repro_cache_misses_total", "repro_simulate_seconds",
                       "repro_fuzz_trials_total"):
            if metric not in exposition:
                fail(f"metric {metric} missing from Prometheus exposition")
        print(f"metrics: {len(REGISTRY)} instruments, exposition ok")

        # --- heartbeats + top -------------------------------------------------
        hb_dir = Path(tmp) / "heartbeats"
        HeartbeatWriter("ci-obs", "chaos", 10, hb_dir).beat(4)
        screen = render_top(directory=hb_dir)
        if "ci-obs" not in screen or "4/10" not in screen:
            fail(f"`repro top` did not render the heartbeat:\n{screen}")
        print("heartbeat: rendered by top")

    print("OK: spans balanced + schema-valid, ledger append-only and"
          " drift-free, metrics exposed, top renders heartbeats")


if __name__ == "__main__":
    main()
