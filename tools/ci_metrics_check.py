"""CI guard for the telemetry layer's JSONL export schema.

Drives two metered simulations and validates everything they export:

* a healthy 4x4 XY run — the JSONL artifact must be strict JSON (no
  ``NaN``/``Infinity`` tokens), lead with a compatible ``meta`` record,
  agree with its own bookkeeping (channel count, lockstep sample
  series), and satisfy the flit-conservation identity against the
  simulator's stats record;
* the crafted 2x2 ring deadlock — the export must carry a ``forensics``
  record naming four witness wires and four blocked packets.

Finally the artifact is rendered through ``repro inspect`` as a smoke
test of the CLI path.  The healthy-run export is left on disk (default
``metrics.jsonl``; first argument overrides) for upload.

Run from the repository root:
    PYTHONPATH=src python tools/ci_metrics_check.py [metrics.jsonl]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any

REQUIRED_KEYS = {
    "meta": {"schema", "topology", "n_nodes", "routing", "sample_every",
             "cycles", "samples", "n_channels", "n_routers"},
    "sample": {"cycle", "throughput", "flit_moves", "buffered_flits",
               "injection_depth", "packets_in_flight", "vc_stalls",
               "mean_link_utilization", "max_link_utilization"},
    "channel": {"wire", "channel", "partition", "src", "dst", "flits",
                "utilization"},
    "router": {"node", "avg_buffered", "peak_buffered", "vc_stalls"},
    "stats": {"flit_moves", "flits_delivered", "packets_delivered"},
    "forensics": {"declared_at", "wait_cycle", "witness_channels",
                  "blocked", "buffer_occupancy"},
}


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def _reject_constant(token: str) -> float:
    raise ValueError(f"non-strict JSON constant {token!r}")


def validate(path: Path) -> list[dict[str, Any]]:
    """Parse + schema-check one exported JSONL file, line by line."""
    records: list[dict[str, Any]] = []
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line, parse_constant=_reject_constant)
        except ValueError as exc:
            fail(f"{path}:{lineno}: {exc}")
        if not isinstance(record, dict) or "record" not in record:
            fail(f"{path}:{lineno}: not a telemetry record")
        kind = record["record"]
        required = REQUIRED_KEYS.get(kind)
        if required is not None and not required <= set(record):
            fail(f"{path}:{lineno}: {kind} record missing keys "
                 f"{sorted(required - set(record))}")
        records.append(record)

    if not records or records[0]["record"] != "meta":
        fail(f"{path}: first record must be meta")
    meta = records[0]
    of = lambda kind: [r for r in records if r["record"] == kind]  # noqa: E731

    channels = of("channel")
    if len(channels) != meta["n_channels"]:
        fail(f"{path}: {len(channels)} channel records, meta says "
             f"{meta['n_channels']}")
    if len(of("router")) != meta["n_routers"]:
        fail(f"{path}: router record count disagrees with meta")
    samples = of("sample")
    if len(samples) != meta["samples"]:
        fail(f"{path}: {len(samples)} sample records, meta says "
             f"{meta['samples']}")
    if samples and [s["cycle"] for s in samples] != sorted(
        {s["cycle"] for s in samples}
    ):
        fail(f"{path}: sample cycles are not strictly increasing")

    stats = of("stats")
    if stats:
        carried = sum(c["flits"] for c in channels)
        in_network = stats[0]["flit_moves"] - stats[0]["flits_delivered"]
        if carried != in_network:
            fail(f"{path}: conservation violated — channels carried "
                 f"{carried} flits, stats imply {in_network}")
    return records


def healthy_export(path: Path) -> None:
    from repro.routing import xy_routing
    from repro.sim import MetricsCollector, NetworkSimulator, TrafficConfig, TrafficGenerator
    from repro.topology import Mesh

    mesh = Mesh(4, 4)
    collector = MetricsCollector(sample_every=50)
    sim = NetworkSimulator(mesh, xy_routing(mesh), metrics=collector)
    traffic = TrafficGenerator(
        mesh, TrafficConfig(injection_rate=0.05, packet_length=4, seed=1)
    )
    stats = sim.run(500, traffic, drain=True)
    if stats.deadlocked:
        fail("healthy metered run deadlocked")
    n = collector.to_jsonl(path, stats=stats)
    print(f"healthy run: {n} records -> {path}")

    records = validate(path)
    if any(r["record"] == "forensics" for r in records):
        fail("healthy run exported a forensics record")
    print(f"healthy run: {len(records)} records validated")


def deadlock_export(path: Path) -> None:
    # The crafted ring deadlock lives in the V8 experiment; reuse it so
    # CI exercises the exact artifact the experiment certifies.
    from repro.experiments import telemetry_demo

    result = telemetry_demo.run()
    if not result.passed:
        for check in result.checks:
            if not check.passed:
                print(f"  failed: {check.name}")
        fail("V8-telemetry experiment checks failed")

    forensics = result.data["forensics"]
    if forensics is None:
        fail("V8-telemetry produced no forensics payload")
    path.write_text(json.dumps(forensics, allow_nan=False) + "\n")

    record = json.loads(path.read_text(), parse_constant=_reject_constant)
    missing = REQUIRED_KEYS["forensics"] - set(record)
    if missing:
        fail(f"forensics record missing keys {sorted(missing)}")
    if len(record["witness_channels"]) != 4:
        fail(f"expected 4 witness wire sets, got "
             f"{len(record['witness_channels'])}")
    if {b["pid"] for b in record["blocked"]} != {0, 1, 2, 3}:
        fail("forensics did not report all four blocked worms")
    print(f"deadlock run: forensics validated ({len(record['blocked'])} "
          "blocked packets)")


def inspect_smoke(path: Path) -> None:
    from repro.cli import main as cli_main

    code = cli_main(["inspect", str(path)])
    if code != 0:
        fail(f"repro inspect exited {code}")
    print("inspect: rendered OK")


def main() -> None:
    out_path = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("metrics.jsonl")
    healthy_export(out_path)
    deadlock_export(out_path.with_suffix(".forensics.json"))
    inspect_smoke(out_path)
    print("PASS: telemetry export schema holds")


if __name__ == "__main__":
    main()
