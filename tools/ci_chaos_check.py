"""CI guard for the chaos campaign engine.

Three gates, any failure exits non-zero:

* **determinism** — a tiny seeded campaign run twice must produce
  byte-identical trial records and byte-identical JSONL reports;
* **schema** — the report must load back through the strict
  :func:`repro.chaos.load_survival` reader, carry exactly one trial
  record per trial, and end with per-policy ``survival`` records whose
  probabilities are probabilities;
* **kill-and-resume** — a checkpointed campaign interrupted after one
  batch (``budget_s=0``) and resumed must finish with exactly the
  records of the uninterrupted run.

The report JSONL is left on disk for artifact upload.

Run from the repository root:
    PYTHONPATH=src python tools/ci_chaos_check.py [report.jsonl]
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

from repro.chaos import (
    CampaignConfig,
    ChaosCampaign,
    load_survival,
    render_survival,
)

CONFIG = CampaignConfig(trials=12, seed=0, mesh=(4, 4), cycles=200)


def main() -> int:
    report_path = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("chaos-report.jsonl")
    started = time.monotonic()
    failures = 0

    first = ChaosCampaign(CONFIG).run()
    second = ChaosCampaign(CONFIG).run()
    if first.trial_bytes != second.trial_bytes:
        print("FAIL: same-seed campaigns produced different trial records")
        failures += 1
    if first.interrupted or first.trials_completed != CONFIG.trials:
        print(f"FAIL: campaign incomplete ({first.trials_completed}/{CONFIG.trials})")
        failures += 1

    first.to_jsonl(report_path)
    with tempfile.TemporaryDirectory(prefix="repro-chaos-ci-") as tmp:
        twin = Path(tmp) / "twin.jsonl"
        second.to_jsonl(twin)
        if report_path.read_bytes() != twin.read_bytes():
            print("FAIL: same-seed campaign reports are not byte-identical")
            failures += 1

        records = load_survival(report_path)  # raises on any schema violation
        trials = [r for r in records if r["record"] == "trial"]
        survival = [r for r in records if r["record"] == "survival"]
        if [t["index"] for t in trials] != list(range(CONFIG.trials)):
            print("FAIL: report does not carry one trial record per trial")
            failures += 1
        if not survival:
            print("FAIL: report carries no survival records")
            failures += 1
        probabilities = [
            p["p_delivered"] for s in survival for p in s["curve"]
        ]
        if not all(0.0 <= p <= 1.0 for p in probabilities):
            print("FAIL: survival probabilities outside [0, 1]")
            failures += 1

        ckpt = Path(tmp) / "ckpt"
        partial = ChaosCampaign(CONFIG, checkpoint_dir=ckpt).run(budget_s=0)
        if not (0 < partial.trials_completed < CONFIG.trials):
            print(
                f"FAIL: budget_s=0 should interrupt mid-campaign,"
                f" got {partial.trials_completed}/{CONFIG.trials}"
            )
            failures += 1
        resumed = ChaosCampaign(CONFIG, checkpoint_dir=ckpt).run()
        if resumed.interrupted or resumed.trial_bytes != first.trial_bytes:
            print("FAIL: resumed campaign does not reproduce the full run")
            failures += 1
        else:
            print(
                f"kill-and-resume ok: {partial.trials_completed} trials before"
                f" the kill, {CONFIG.trials} after resume, records identical"
            )

    print(render_survival(records))
    print(f"report written to {report_path}")
    print(
        f"chaos gate: {CONFIG.trials}-trial campaign x2 + resume,"
        f" {time.monotonic() - started:.1f}s, failures={failures}"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
