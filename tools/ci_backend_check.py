"""CI guard for the vector simulation backend's cycle-exactness claim.

Two gates, any failure exits non-zero:

* **catalog parity** — eight catalog designs (deterministic, partially
  and fully adaptive, torus, 3D) simulate on both backends under
  uniform traffic; every ``SimStats.to_dict()`` must be bit-identical,
  deadlock declaration cycle included;
* **corpus parity** — every committed fuzz witness under
  ``tests/fuzz/corpus`` (designs that *deadlock* or are otherwise
  adversarial) runs on both backends with the same adversarial traffic;
  again identical stats — this is the gate that keeps the result cache's
  backend-agnostic keys (:func:`repro.sim.parallel.cache_key`) honest.

Run from the repository root:
    PYTHONPATH=src python tools/ci_backend_check.py
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any

from repro.errors import EbdaError, RoutingError, SimulationError
from repro.routing.table import TurnTableRouting
from repro.sim import (
    NetworkSimulator,
    TrafficConfig,
    TrafficGenerator,
    VectorSimulator,
)

COMMITTED_CORPUS = Path("tests/fuzz/corpus")

#: (design name, mesh spec, injection rate) — deterministic through
#: fully adaptive, 2D/3D, plus the torus-relevant channel structures.
CATALOG_POINTS = (
    ("xy", "8x8", 0.10),
    ("west-first", "8x8", 0.08),
    ("north-last", "6x6", 0.08),
    ("negative-first", "6x6", 0.08),
    ("odd-even", "6x6", 0.08),
    ("dyxy", "8x8", 0.06),
    ("fig9b", "3x3x3", 0.05),
    ("west-first-vcs", "6x6", 0.08),
)
CYCLES = 600
SEED = 3


def _run_both(
    topology: Any,
    routing: Any,
    rule: Any,
    *,
    cycles: int,
    rate: float,
    seed: int,
    watchdog: int = 500,
    buffer_depth: int = 4,
    drain: bool = True,
) -> list[dict[str, Any] | str]:
    """(reference stats dict | exception name, vector ditto)."""
    out: list[dict[str, Any] | str] = []
    for cls in (NetworkSimulator, VectorSimulator):
        sim = cls(
            topology, routing, rule,
            buffer_depth=buffer_depth, watchdog=watchdog, seed=seed,
        )
        traffic = TrafficGenerator(
            topology,
            TrafficConfig(injection_rate=rate, packet_length=4, seed=seed),
        )
        try:
            out.append(sim.run(cycles, traffic, drain=drain).to_dict())
        except (RoutingError, SimulationError) as exc:
            out.append(type(exc).__name__)
    return out


def check_catalog() -> int:
    from repro.sim.specs import resolve_routing_factory
    from repro.topology import Mesh
    from repro.topology.classes import rule_for_design

    failures = 0
    for name, mesh_spec, rate in CATALOG_POINTS:
        topology = Mesh(*(int(k) for k in mesh_spec.split("x")))
        routing = resolve_routing_factory(name)(topology)
        rule = rule_for_design(name)
        started = time.perf_counter()
        ref, vec = _run_both(
            topology, routing, rule, cycles=CYCLES, rate=rate, seed=SEED
        )
        elapsed = time.perf_counter() - started
        ok = ref == vec
        print(f"catalog {name:16s} {mesh_spec:6s} rate={rate:.2f}"
              f" [{'ok' if ok else 'DIVERGED'}] ({elapsed:.1f}s)")
        if not ok:
            failures += 1
            _diff(ref, vec)
    return failures


def check_corpus() -> int:
    from repro.fuzz import replay_corpus  # noqa: F401 — ensures corpus importable
    from repro.fuzz.corpus import load_entry

    entries = sorted(COMMITTED_CORPUS.glob("*.json"))
    if len(entries) < 5:
        print(f"FAIL: expected >= 5 corpus entries, found {len(entries)}")
        return 1
    failures = 0
    for path in entries:
        entry = load_entry(path)
        design = entry.design
        seq, turnset = design.compile()
        topology = design.topology()
        rule = design.class_rule()
        try:
            routing = TurnTableRouting(
                topology, seq, rule, turnset=turnset, validate=False
            )
        except EbdaError as exc:
            print(f"corpus {entry.id} [skip: unroutable build] {exc}")
            continue
        ref, vec = _run_both(
            topology, routing, rule,
            cycles=400, rate=0.3, seed=0, watchdog=150, buffer_depth=2,
            drain=False,
        )
        ok = ref == vec
        verdict = "ok" if ok else "DIVERGED"
        deadlocked = isinstance(ref, dict) and ref.get("deadlocked")
        print(f"corpus {entry.id} [{verdict}]"
              f" deadlock={bool(deadlocked)}: {design.describe()}")
        if not ok:
            failures += 1
            _diff(ref, vec)
    return failures


def _diff(ref: dict[str, Any] | str, vec: dict[str, Any] | str) -> None:
    if isinstance(ref, dict) and isinstance(vec, dict):
        for key in sorted(ref):
            if ref[key] != vec.get(key):
                print(f"  {key}: reference={ref[key]!r} vector={vec.get(key)!r}")
    else:
        print(f"  reference={ref!r} vector={vec!r}")


def main() -> int:
    failures = check_catalog()
    failures += check_corpus()
    if failures:
        print(f"\n{failures} backend parity check(s) FAILED")
        return 1
    print("\nbackend parity: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
