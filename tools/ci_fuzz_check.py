"""CI guard for the differential verification fuzzer.

Four gates, any failure exits non-zero:

* **self-check** — a synthetic disagreement (a Theorem-1-violating mutant
  falsely labeled valid) must be detected as ``valid-design-rejected``
  and shrink to within the 2-ary 2-mesh witness bound, proving the
  detect → shrink pipeline is actually wired up;
* **corpus replay** — every committed witness under ``tests/fuzz/corpus``
  must still be flagged by all five oracles (theorems, static mirror,
  CDG acyclicity, simulator, arbitrary-network existence condition);
* **smoke campaign** — a fixed-seed mesh/torus fuzzing run under a
  wall-clock budget must finish with zero hard disagreements;
* **all-families campaign** — a fixed-seed run drawing from every
  topology family (mesh, torus, dragonfly, fat-tree, irregular) must
  finish with zero hard disagreements, exercising the native-engine
  oracle paths and the fifth oracle end to end.

Any disagreement found is minimised and persisted next to the JSONL
trial logs for artifact upload.

Run from the repository root:
    PYTHONPATH=src python tools/ci_fuzz_check.py [report.jsonl] [corpus_out/]

The all-families trial log is written next to the first argument with an
``-families`` suffix (default ``fuzz-report-families.jsonl``).
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.fuzz import FAMILIES, fast_profile, replay_corpus, run_fuzz, self_check

COMMITTED_CORPUS = Path("tests/fuzz/corpus")
BUDGET_S = 60.0
FAMILIES_BUDGET_S = 120.0
SEED = 0
RUNS = 200


def main() -> int:
    report_path = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("fuzz-report.jsonl")
    corpus_out = Path(sys.argv[2]) if len(sys.argv) > 2 else Path("fuzz-corpus-out")
    families_report_path = report_path.with_name(
        report_path.stem + "-families" + report_path.suffix
    )
    profile = fast_profile()
    failures = 0

    ok, message = self_check(profile)
    print(message)
    if not ok:
        failures += 1

    replayed = replay_corpus(COMMITTED_CORPUS, profile=profile)
    if len(replayed) < 5:
        print(f"FAIL: expected >= 5 committed corpus entries, found {len(replayed)}")
        failures += 1
    for entry, detected, trial in replayed:
        status = "ok" if detected and trial.all_flagged else "MISSED"
        print(
            f"replay {entry.id} [{status}]"
            f" got={trial.classification}: {entry.design.describe()}"
        )
        if status != "ok":
            failures += 1

    started = time.monotonic()
    report = run_fuzz(
        RUNS,
        seed=SEED,
        budget_s=BUDGET_S,
        corpus_dir=corpus_out,
        profile=profile,
    )
    print(report.summary())
    report.to_jsonl(report_path)
    print(f"trial log written to {report_path}")
    if not report.ok:
        failures += 1
    if report.runs_completed == 0:
        print("FAIL: budget expired before any trial completed")
        failures += 1
    print(
        f"fuzz smoke: {report.runs_completed} trials,"
        f" {time.monotonic() - started:.1f}s, failures={failures}"
    )

    started = time.monotonic()
    families_report = run_fuzz(
        RUNS,
        seed=SEED,
        budget_s=FAMILIES_BUDGET_S,
        corpus_dir=corpus_out,
        profile=profile,
        families=FAMILIES,
    )
    print(families_report.summary())
    families_report.to_jsonl(families_report_path)
    print(f"all-families trial log written to {families_report_path}")
    if not families_report.ok:
        failures += 1
    if families_report.runs_completed == 0:
        print("FAIL: budget expired before any all-families trial completed")
        failures += 1
    print(
        f"fuzz all-families: {families_report.runs_completed} trials,"
        f" {time.monotonic() - started:.1f}s, failures={failures}"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
