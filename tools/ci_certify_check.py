"""CI guard for the symbolic verification engine (``repro.analyze.symbolic``).

Four gates, any failure exits non-zero:

* **prover gate** — every registered symbolic family must certify, the
  paper's claimed-safe catalog designs and parametric constructions
  (dimension-order mesh, Algorithm-1 mesh, dateline torus) must be
  proven clean over their whole domain, and every deliberately broken
  family must be proven to violate exactly its target rule;
* **checker gate** — the independent certificate checker
  (``repro.analyze.certcheck``) must re-validate every sealed
  certificate, and must reject a sample of byte-level tampered copies
  (flipped status, edited witness, forged digest);
* **differential gate** — symbolic verdicts must agree with the concrete
  linter at >= 500 random ``(n, k)`` instantiation points across all
  families, with zero disagreements;
* **artifact gate** — the sealed certificates are written one JSON file
  per family to the directory given on the command line, for CI artifact
  upload; every file must round-trip through the checker after reading
  back from disk.

Run from the repository root:
    PYTHONPATH=src python tools/ci_certify_check.py [certificates-dir]
"""

from __future__ import annotations

import json
import random
import sys
import time
from pathlib import Path

from repro.analyze import certify_all, check_certificate, check_certificates
from repro.analyze.symbolic import SYMBOLIC_FAMILIES, differential_gate, symbolic_family

#: Families that must be proven clean over their entire (n, k) domain.
MUST_BE_CLEAN = (
    "dim-order-mesh",
    "alg1-mesh",
    "dateline-torus",
    "catalog:xy",
    "catalog:dyxy",
    "catalog:fig7c",
    "catalog:fig9b",
    "catalog:fig9c",
    "catalog:dragonfly-minimal",
    "catalog:dragonfly-valiant",
    "catalog:fattree-updown",
)

#: Broken families and the one rule each must be proven to violate.
MUST_VIOLATE = {
    "mesh-missing-negative": "EBDA008",
    "mesh-descending-uturn": "EBDA002",
    "mesh-backward-turn": "EBDA003",
    "mesh-foreign-turn": "EBDA004",
    "torus-no-dateline": "EBDA005",
    "alg1-claimed": "EBDA009",
}

#: Differential-gate floor: the acceptance criterion from the issue.
MIN_POINTS = 500

#: Tampered copies to feed the checker per campaign.
TAMPER_SAMPLES = 60


def check_prover() -> tuple[int, list]:
    failures = 0
    start = time.perf_counter()
    reports = list(certify_all())
    elapsed = time.perf_counter() - start
    certs = sum(len(r.certificates) for r in reports)
    print(f"certify: {len(reports)} families, {certs} certificates"
          f" in {elapsed:.1f}s")
    by_name = {r.family: r for r in reports}
    missing = sorted(set(SYMBOLIC_FAMILIES) - set(by_name))
    if missing:
        failures += 1
        print(f"FAIL: families did not certify: {', '.join(missing)}")
    for name in MUST_BE_CLEAN:
        rep = by_name.get(name)
        if rep is None:
            failures += 1
            print(f"FAIL: expected clean family {name} is not registered")
        elif not rep.ok:
            failures += 1
            print(f"FAIL: {name} should be proven clean, violates"
                  f" {', '.join(rep.violation_rules)}")
        else:
            design = symbolic_family(name)
            shape = (f"n = {design.n_fixed}" if design.n_fixed is not None
                     else f"all n >= {design.n_min}")
            print(f"certify {name} [ok] clean over {shape}, k >= {design.k_min}")
    for name, rule in MUST_VIOLATE.items():
        rep = by_name.get(name)
        if rep is None:
            failures += 1
            print(f"FAIL: expected broken family {name} is not registered")
        elif rep.violation_rules != (rule,):
            failures += 1
            print(f"FAIL: {name} should violate exactly {rule}, got"
                  f" {rep.violation_rules or 'no violations'}")
        else:
            print(f"certify {name} [ok] proven to violate {rule}")
    return failures, reports


def check_checker(reports: list) -> int:
    failures = 0
    dicts = [c.to_dict() for rep in reports for c in rep.certificates]
    results = check_certificates(dicts)
    bad = [r for r in results if not r.ok]
    if bad:
        failures += len(bad)
        for r in bad:
            print(f"FAIL: checker rejected a prover certificate: {r.describe()}")
    else:
        print(f"certcheck: all {len(results)} certificates independently"
              " re-validated")

    # Tamper detection: any mutated byte of the canonical JSON must be
    # rejected (either the digest breaks or the JSON stops parsing).
    rng = random.Random(0)
    texts = [json.dumps(d, sort_keys=True, separators=(",", ":"))
             for d in dicts]
    undetected = 0
    for _ in range(TAMPER_SAMPLES):
        text = rng.choice(texts)
        pos = rng.randrange(len(text))
        old = text[pos]
        new = chr((ord(old) - 32 + rng.randrange(1, 95)) % 95 + 32)
        tampered = text[:pos] + new + text[pos:][1:]
        try:
            parsed = json.loads(tampered)
        except ValueError:
            continue
        if parsed == json.loads(text):  # e.g. 1.0 -> 1.00: value-equal
            continue
        if check_certificate(parsed).ok:
            undetected += 1
            print(f"FAIL: tampered byte at offset {pos} ({old!r} -> {new!r})"
                  " passed the checker")
    if undetected:
        failures += 1
    else:
        print(f"certcheck: {TAMPER_SAMPLES}/{TAMPER_SAMPLES} tampered"
              " copies rejected")
    return failures


def check_differential() -> int:
    start = time.perf_counter()
    result = differential_gate(points=MIN_POINTS, seed=0)
    elapsed = time.perf_counter() - start
    if len(result.checked) < MIN_POINTS:
        print(f"FAIL: differential gate ran {len(result.checked)} checks,"
              f" expected >= {MIN_POINTS}")
        return 1
    if not result.ok:
        print(f"FAIL: {len(result.disagreements)} symbolic-vs-concrete"
              " disagreement(s):")
        for d in result.disagreements:
            print(f"  {d.describe()}")
        return 1
    print(f"differential: {len(result.checked)} instantiation checks over"
          f" {len(result.families)} families in {elapsed:.1f}s,"
          " zero disagreements")
    return 0


def write_artifacts(reports: list, out_dir: Path) -> int:
    out_dir.mkdir(parents=True, exist_ok=True)
    failures = 0
    for rep in reports:
        path = out_dir / f"{rep.family.replace(':', '_')}.json"
        path.write_text(
            json.dumps([c.to_dict() for c in rep.certificates], indent=2,
                       sort_keys=True) + "\n"
        )
        for cert in json.loads(path.read_text()):
            result = check_certificate(cert)
            if not result.ok:
                failures += 1
                print(f"FAIL: {path} does not round-trip: {result.describe()}")
    if not failures:
        print(f"artifacts: {len(reports)} certificate files -> {out_dir},"
              " all round-trip through the checker")
    return failures


def main() -> int:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("certificates")
    failures = 0

    prover_failures, reports = check_prover()
    failures += prover_failures

    failures += check_checker(reports)
    failures += check_differential()
    failures += write_artifacts(reports, out_dir)

    if failures:
        print(f"{failures} certify gate failure(s)")
        return 1
    print("certify gates passed: families proven, certificates checked,"
          " tampering detected, differential clean, artifacts written")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
