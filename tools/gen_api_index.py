"""Regenerate docs/API_INDEX.md: one line per public symbol, from docstrings.

(The hand-written API guide lives in docs/API.md; this index complements it.)
Run from the repository root:  python tools/gen_api_index.py
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
from pathlib import Path


def main() -> None:
    import repro

    lines = [
        "# API index",
        "",
        "Auto-generated from docstrings (`python tools/gen_api_index.py`).",
        "One line per public symbol: the first sentence of its docstring.",
        "The curated guide to the everyday surface is [API.md](API.md);",
        "the differential fuzzing harness is documented in"
        " [FUZZING.md](FUZZING.md).",
        "",
    ]
    for modinfo in sorted(
        pkgutil.walk_packages(repro.__path__, "repro."), key=lambda m: m.name
    ):
        if modinfo.name.endswith("__main__"):
            continue
        mod = importlib.import_module(modinfo.name)
        public: list[tuple[str, str, str]] = []
        for name in sorted(getattr(mod, "__all__", []) or vars(mod)):
            if name.startswith("_"):
                continue
            obj = vars(mod).get(name)
            if obj is None or inspect.ismodule(obj):
                continue
            if getattr(obj, "__module__", None) != modinfo.name:
                continue
            doc = (inspect.getdoc(obj) or "").strip().split("\n")[0].rstrip(".")
            kind = "class" if inspect.isclass(obj) else (
                "func" if callable(obj) else "const"
            )
            public.append((name, kind, doc))
        if not public:
            continue
        mdoc = (inspect.getdoc(mod) or "").strip().split("\n")[0]
        lines.append(f"## `{modinfo.name}`")
        lines.append("")
        if mdoc:
            lines.append(mdoc)
            lines.append("")
        for name, kind, doc in public:
            entry = f"- **`{name}`** ({kind})"
            if doc:
                entry += f" — {doc}"
            lines.append(entry)
        lines.append("")
    out = Path(__file__).resolve().parent.parent / "docs" / "API_INDEX.md"
    out.write_text("\n".join(lines))
    print(f"wrote {out}: {len(lines)} lines")


if __name__ == "__main__":
    main()
