"""CI guard for the sweep engine's result cache.

Runs the V2 deadlock-stress experiment twice against a fresh cache and
asserts the contract the cache promises:

* the cold run simulates every point (zero hits);
* the warm rerun is served entirely from the cache — 100% hits, zero
  simulation cycles executed — and is faster than the cold run;
* both runs produce identical per-point outcomes.

Writes the two SweepReports to a JSON artifact (default
``sweep-report.json``; first argument overrides) for upload.

Run from the repository root:
    PYTHONPATH=src python tools/ci_cache_check.py [report.json]
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def main() -> None:
    from repro.experiments import deadlock_demo
    from repro.sim import ResultCache, SweepEngine

    out_path = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("sweep-report.json")

    with tempfile.TemporaryDirectory(prefix="repro-ebda-ci-cache-") as tmp:
        cache = ResultCache(Path(tmp) / "cache")

        cold_result = deadlock_demo.run(engine=SweepEngine(cache=cache))
        cold = cold_result.data["sweep"]
        print(f"cold: {cold['cache_hits']} hit / {cold['cache_misses']} miss,"
              f" {cold['cycles_executed']} cycles, {cold['wall_time']:.2f}s")

        warm_result = deadlock_demo.run(engine=SweepEngine(cache=cache))
        warm = warm_result.data["sweep"]
        print(f"warm: {warm['cache_hits']} hit / {warm['cache_misses']} miss,"
              f" {warm['cycles_executed']} cycles, {warm['wall_time']:.2f}s")

    out_path.write_text(json.dumps({"cold": cold, "warm": warm}, indent=2))
    print(f"wrote {out_path}")

    if cold["cache_hits"] != 0:
        fail(f"cold run hit a fresh cache ({cold['cache_hits']} hits)")
    if warm["cache_misses"] != 0 or warm["cache_hits"] != warm["n_points"]:
        fail(f"warm rerun was not 100% cache hits: {warm['cache_hits']}"
             f"/{warm['n_points']} hits, {warm['cache_misses']} misses")
    if warm["cycles_executed"] != 0:
        fail(f"warm rerun executed {warm['cycles_executed']} simulation cycles")
    if warm["wall_time"] >= cold["wall_time"]:
        fail(f"warm rerun not faster: {warm['wall_time']:.2f}s"
             f" vs cold {cold['wall_time']:.2f}s")

    cold_points = [
        (p["routing"], p["injection_rate"], p["seed"], p["avg_latency"],
         p["throughput"], p["deadlocked"])
        for p in cold["points"]
    ]
    warm_points = [
        (p["routing"], p["injection_rate"], p["seed"], p["avg_latency"],
         p["throughput"], p["deadlocked"])
        for p in warm["points"]
    ]
    if cold_points != warm_points:
        fail("cache-served outcomes differ from simulated outcomes")

    print("OK: warm rerun 100% cached, zero simulation cycles, faster than cold")


if __name__ == "__main__":
    main()
