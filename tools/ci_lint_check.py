"""CI guard for the static design analyzer (``repro.analyze``).

Five gates, any failure exits non-zero:

* **catalog gate** — eight known-good designs (XY, west-first,
  north-last, negative-first, DyXY, Odd-Even, Hamiltonian, the improved
  Elevator-First a.k.a. ``partial3d``) must lint with ZERO error-severity
  diagnostics: the linter has no false positives on the paper's designs;
* **new-engines gate** — the beyond-mesh catalog designs (dragonfly
  minimal/Valiant, fat-tree up*/down*) must lint clean when bound to
  their native topologies (the dragonfly pair ignores EBDA005, whose
  torus wrap-ring premise does not transfer to dragonfly 2-rings);
* **dragonfly-loop gate** — a theorem-clean but single-phase dragonfly
  design (local and global channels waiting on each other) must be
  flagged by EBDA012, the global-loop analogue of the wrap-ring rule;
* **mutant gate** — every committed fuzz-corpus witness under
  ``tests/fuzz/corpus`` must raise at least one error diagnostic carrying
  a stable rule ID and a design location: the linter has no false
  negatives on known-broken designs;
* **SARIF gate** — the combined SARIF 2.1.0 log must validate against the
  vendored subset schema (``tools/sarif-2.1.0-subset.schema.json``) and
  is written to the path given on the command line for artifact upload.

Run from the repository root:
    PYTHONPATH=src python tools/ci_lint_check.py [lint.sarif]
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

from repro.analyze import Analyzer, DesignUnit
from repro.analyze.engine import AnalysisReport
from repro.analyze.reporters import render_sarif
from repro.core import catalog
from repro.fuzz.corpus import load_corpus
from repro.topology import Dragonfly, FatTree
from repro.topology.classes import rule_for_design
from repro.topology.mesh import Mesh

COMMITTED_CORPUS = Path("tests/fuzz/corpus")
SCHEMA_PATH = Path(__file__).with_name("sarif-2.1.0-subset.schema.json")
RULE_ID = re.compile(r"^EBDA\d{3}$")

#: The known-good designs the linter must pass without error diagnostics.
GATE_DESIGNS = (
    "xy",
    "west-first",
    "north-last",
    "negative-first",
    "dyxy",
    "odd-even",
    "hamiltonian",
    "partial3d",
)


def catalog_unit(name: str) -> DesignUnit:
    design = catalog.design(name)
    n_dims = len({ch.dim for ch in design.all_channels})
    return DesignUnit.from_sequence(
        design,
        name=name,
        topology=Mesh(*((4,) * n_dims)),
        rule=rule_for_design(name),
    )


def check_catalog(analyzer: Analyzer) -> tuple[int, list[AnalysisReport]]:
    failures = 0
    reports: list[AnalysisReport] = []
    for name in GATE_DESIGNS:
        report = analyzer.run(catalog_unit(name))
        reports.append(report)
        if report.errors:
            failures += 1
            print(f"FAIL: {name} should lint clean but raised:")
            for diag in report.errors:
                print(f"  {diag.render()}")
        else:
            print(f"lint {name} [ok] {len(report.rules_run)} rules,"
                  f" {report.counts['warning']} warning(s),"
                  f" {report.counts['note']} note(s)")
    return failures, reports


#: Beyond-mesh catalog designs linted against their native topologies.
#: ``ignore`` drops rules whose premises do not transfer (EBDA005's torus
#: wrap rings read dragonfly global 2-rings as unbroken wrap rings);
#: EBDA012, the dragonfly global-loop analogue, stays enabled and is the
#: check that actually covers those 2-rings.
NEW_ENGINE_DESIGNS = (
    ("dragonfly-minimal", lambda: Dragonfly(4), ("EBDA005",)),
    ("dragonfly-valiant", lambda: Dragonfly(4), ("EBDA005",)),
    ("fattree-updown", lambda: FatTree(4, 2, 2), ()),
)


def check_new_engines() -> tuple[int, list[AnalysisReport]]:
    failures = 0
    reports: list[AnalysisReport] = []
    for name, make_topology, ignore in NEW_ENGINE_DESIGNS:
        unit = DesignUnit.from_sequence(
            catalog.design(name),
            name=name,
            topology=make_topology(),
            rule=rule_for_design(name),
        )
        report = Analyzer(ignore=ignore).run(unit)
        reports.append(report)
        if report.errors:
            failures += 1
            print(f"FAIL: {name} should lint clean on its native topology:")
            for diag in report.errors:
                print(f"  {diag.render()}")
        else:
            ignored = f" (ignoring {', '.join(ignore)})" if ignore else ""
            print(f"lint {name} [ok] native topology{ignored},"
                  f" {report.counts['warning']} warning(s),"
                  f" {report.counts['note']} note(s)")
    return failures, reports


def check_dragonfly_loop() -> int:
    """Negative gate for EBDA012: a dragonfly design whose local and
    global phases wait on each other must be flagged, even though it is
    clean under every theorem-mirror rule."""
    unit = DesignUnit.from_sequence(
        "X+@l Y+@g",
        name="dragonfly-single-phase",
        topology=Dragonfly(4),
        rule=rule_for_design("dragonfly-minimal"),
    )
    report = Analyzer(ignore=("EBDA005",)).run(unit)
    fired = sorted({d.rule for d in report.errors})
    if "EBDA012" not in fired:
        print("FAIL: single-phase dragonfly design should raise EBDA012,"
              f" got {fired or 'no errors'}")
        return 1
    print(f"lint dragonfly-single-phase [ok] flagged via {', '.join(fired)}")
    return 0


def check_mutants(analyzer: Analyzer) -> tuple[int, list[AnalysisReport]]:
    failures = 0
    reports: list[AnalysisReport] = []
    entries = load_corpus(COMMITTED_CORPUS)
    if len(entries) < 5:
        print(f"FAIL: expected >= 5 committed corpus entries, found {len(entries)}")
        failures += 1
    for entry in entries:
        seq, turnset = entry.design.compile()
        # Native-engine designs (dragonfly, up-down) are judged on the
        # sequence alone, mirroring the oracle's static verdict: the
        # mesh/torus topology-aware rules do not transfer to them.
        native = entry.design.engine != "table"
        unit = DesignUnit(
            sequence=seq,
            turnset=turnset,
            name=entry.design.label or entry.id,
            topology=None if native else entry.design.topology(),
            rule=entry.design.class_rule(),
        )
        report = analyzer.run(unit)
        reports.append(report)
        bad = [
            d
            for d in report.errors
            if not RULE_ID.match(d.rule) or not d.location.describe()
        ]
        if not report.errors:
            failures += 1
            print(f"FAIL: mutant {entry.id} raised no error diagnostic"
                  f" ({entry.design.describe()})")
        elif bad:
            failures += 1
            print(f"FAIL: mutant {entry.id} has malformed diagnostics: {bad}")
        else:
            ids = sorted({d.rule for d in report.errors})
            loc = report.errors[0].location.describe()
            print(f"lint mutant {entry.id} [ok] {len(report.errors)} error(s)"
                  f" via {', '.join(ids)} at e.g. {loc}")
    return failures, reports


def check_sarif(reports: list[AnalysisReport], out_path: Path) -> int:
    rendered = render_sarif(reports)
    out_path.write_text(rendered + "\n")
    log = json.loads(rendered)
    n_results = len(log["runs"][0]["results"])
    print(f"SARIF log: {n_results} result(s) -> {out_path}")
    try:
        import jsonschema
    except ImportError:
        print("WARN: jsonschema unavailable; structural schema check skipped")
        return 0
    schema = json.loads(SCHEMA_PATH.read_text())
    try:
        jsonschema.validate(log, schema)
    except jsonschema.ValidationError as exc:
        print(f"FAIL: SARIF output violates the 2.1.0 subset schema: {exc.message}")
        return 1
    print("SARIF log validates against the vendored 2.1.0 subset schema")
    return 0


def main() -> int:
    sarif_path = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("lint.sarif")
    analyzer = Analyzer()
    failures = 0

    catalog_failures, catalog_reports = check_catalog(analyzer)
    failures += catalog_failures

    engine_failures, engine_reports = check_new_engines()
    failures += engine_failures

    failures += check_dragonfly_loop()

    mutant_failures, mutant_reports = check_mutants(analyzer)
    failures += mutant_failures

    failures += check_sarif(
        catalog_reports + engine_reports + mutant_reports, sarif_path
    )

    if failures:
        print(f"{failures} lint gate failure(s)")
        return 1
    print("lint gates passed: catalog clean, new engines clean,"
          " dragonfly loop flagged, mutants flagged, SARIF valid")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
